//! `dse` — explore the NGPC design space from the command line.
//!
//! ```text
//! dse --preset paper                        # the flagship 1440-point sweep
//! dse --preset paper --max-area 3 --max-power 5
//! dse --spec sweep.toml --json out.json --csv out.csv
//! dse --preset quick --per-app --threads 4
//! dse --search --preset guided-lanes        # budgeted guided search (~260k-point space)
//! dse --search evolve --preset guided-lanes --budget 8000 --seed 7
//! ```

use std::path::Path;
use std::process::ExitCode;

use ng_dse::report::{describe_constraints, print_report};
use ng_dse::{Constraints, SweepEngine, SweepSpec};

const USAGE: &str = "\
dse — NGPC design-space exploration with Pareto frontier extraction

USAGE:
    dse [--preset NAME | --spec FILE.toml] [OPTIONS]
    dse resume [JOB] [--cache-dir DIR] [--quiet]
    dse trace LEDGER.jsonl [--chrome OUT.json] [--check] [--min-coverage P]
    dse fsck [--cache-dir DIR] [--ledger PATH] [--repair] [--check]
    dse compact [--cache-dir DIR]
    dse chaos [--iterations N] [--seed N] [--cache-dir DIR]

SPEC:
    --preset NAME        paper | quick | clocks | resolutions | mac-arrays |
                         guided-lanes (default: paper)
    --spec FILE          load a sweep spec from a TOML file
    --apps LIST          override app axis, e.g. nerf,gia
    --encodings LIST     override encoding axis, e.g. hashgrid,densegrid
    --nfp-units LIST     override NFP-count axis, e.g. 8,16,32,64
    --clocks LIST        override clock axis (GHz), e.g. 0.5,1.0,2.0
    --pixels LIST        override resolution axis (pixels per frame)
    --sram-kb LIST       override grid-SRAM axis (KiB per engine)
    --banks LIST         override SRAM bank axis (powers of two)
    --engines LIST       override encoding-engine-count axis, e.g. 8,16,32
    --mac-rows LIST      override MAC-array row axis, e.g. 32,64,128
    --mac-cols LIST      override MAC-array column axis, e.g. 32,64,128
    --lanes LIST         override query-lanes-per-engine axis, e.g. 1,2,4
    --fifo LIST          override input-FIFO-depth axis, e.g. 2,8,64

SEARCH (budgeted guided exploration instead of the exhaustive sweep):
    --search [STRAT]     guided search: hill (default) | evolve
    --budget N           max fresh point evaluations (default: 5% of
                         the space)
    --seed N             search RNG seed (default: fixed; equal seeds
                         reproduce the exact trajectory)

CONSTRAINTS (filter the reported frontier, not the evaluation):
    --max-area PCT       keep architectures with area ≤ PCT% of the GPU die
    --max-power PCT      keep architectures with power ≤ PCT% of GPU TDP
    --min-speedup X      keep architectures with cross-app speedup ≥ X

EXECUTION:
    --threads N          worker threads (default: all cores; with
                         --workers: threads *per worker process*,
                         default cores/workers)
    --workers N          multi-process sweep: spawn N worker processes
                         that partition the spec into deterministic
                         canonical-order slices and coordinate through
                         the shared point store; the coordinator merges
                         (recovering any crashed worker's slice) and
                         reports as usual. Requires the cache.
    --worker-shard i/N   low-level worker mode (what --workers spawns):
                         evaluate slice i of N, append it to the store,
                         print a one-line summary, exit
    --stall-timeout SECS revoke a distributed worker's slice lease after
                         this many seconds without heartbeat or progress
                         (default: 10; equivalent env: NG_DSE_STALL_TIMEOUT)
    --cache-dir DIR      evaluation cache location (default: .dse-cache)
    --no-cache           always re-evaluate, never read or write the cache
    --cache-stats        print per-run cache hit/miss/evaluated counts,
                         both store layers (compact binary base + live
                         CSV tail per shard), the base/tail hit split,
                         and cumulative shard lock-wait time
    --auto-compact N     opt-in automatic compaction: after this run's
                         append (for --workers: after the merge), fold
                         the live CSV tail into a binary generation if
                         it holds at least N rows (see `dse compact`)

OBSERVABILITY:
    --trace PATH         record a JSONL run ledger (spans, counters,
                         heartbeats) to PATH; spawned workers append to
                         the same ledger. Equivalent env: NG_DSE_TRACE
    --metrics            print the in-process stage profile and counter
                         deltas to stderr after the run
    --quiet              suppress the live stderr progress line (stdout
                         output is byte-identical either way)

    dse trace LEDGER     summarize a recorded ledger: per-stage profile
                         table, per-process counters, balance/invariant
                         verdict
      --chrome OUT.json  also export the ledger as a Chrome trace
                         (chrome://tracing, Perfetto)
      --check            exit non-zero on unbalanced spans, counter
                         invariant violations, or stage coverage < 95%
                         of the root span's wall time
      --min-coverage P   coverage floor (percent) for --check; default
                         95. Use 0 on very short runs, where fixed
                         startup costs dominate the root span

    dse fsck             audit the point store (and optionally a run
                         ledger) for torn rows, interior headers,
                         duplicate keys, foreign/misplaced rows,
                         truncated tails, and binary-generation damage
                         (checksum/sort/index corruption, orphaned
                         generations and compactor tmp leftovers)
      --cache-dir DIR    store to audit (default: .dse-cache)
      --ledger PATH      also audit a JSONL run ledger for torn lines
      --repair           rewrite dirty shards into canonical form
                         (defective lines dropped, misplaced rows moved
                         home, unreadable shards quarantined to
                         *.quarantine); delete orphaned generations and
                         rebuild a corrupt one by re-compacting from
                         the surviving layers
      --check            exit non-zero if any defect was found

    dse compact          fold the store's live CSV shards (its
                         write-ahead layer) into a compacted,
                         checksummed, key-sorted binary generation the
                         cache then serves with one read and zero
                         per-row parsing; safe against concurrent
                         writers, which keep appending CSV that
                         overlays the new base
      --cache-dir DIR    store to compact (default: .dse-cache)

GRACEFUL SHUTDOWN AND RESUME:
    The first SIGINT/SIGTERM drains the run: no new points are
    dispatched, everything already computed is flushed to the point
    store, the job manifest is marked interrupted, and the process
    exits 130. A second signal exits 131 immediately (the store's
    appends are crash-safe either way). Every cache-enabled
    sweep/search/--workers run writes a durable job manifest to
    <cache-dir>/jobs/job-*.json before evaluating.

    dse resume [JOB]     re-enter an interrupted job and evaluate only
                         its missing tail (the store replays the prefix
                         as warm hits, so the final output is
                         byte-identical to an uninterrupted run). JOB
                         is a job id or a manifest path; omitted, the
                         newest resumable job is picked
      --cache-dir DIR    where to look for jobs (default: .dse-cache)
      --quiet            suppress the live progress line

    dse chaos            seeded soak harness: N iterations, each
                         running a quick sweep in child processes under
                         a randomized-but-replayable fault schedule
                         (worker kill/hang, torn tails, transient
                         append/ledger errors, ENOSPC, mid-run
                         SIGTERM + resume), then asserting invariants:
                         fsck-clean store, 100% warm re-run, CSV
                         byte-parity with the fault-free reference
      --iterations N     soak iterations (default: 5)
      --seed N           schedule seed (default: 1); a failing
                         iteration's banner names the exact seed to
                         replay it alone
      --cache-dir DIR    scratch root (default: a fresh temp dir)

FAULT INJECTION (deterministic chaos testing):
    --faults PLAN        arm a seeded fault plan in this process and
                         every spawned worker; equivalent env:
                         NG_DSE_FAULTS. PLAN is `;`-separated faults,
                         e.g. `seed=7;append:io@p=0.01,times=3`,
                         `worker:kill@point=500`, `worker:hang@point=9`,
                         `heartbeat:delay=5s`, `shard:torn-tail`,
                         `ledger:io@p=0.05`, `calib:partial-write`,
                         `compact:crash@stage=2` (1 = generation
                         written but unverified, 2 = live but CSV not
                         yet truncated, 3 = mid-truncation)

MAPPING SEARCH (joint mapping search through timeloop-lite):
    --map-search         per candidate MAC array, search the best
                         mapping of every MLP layer with ng-timeloop,
                         re-evaluate each point under the winners, and
                         report/emit fixed-vs-searched columns (the
                         point rows themselves are untouched — the
                         plain CSV stays byte-identical). Searches are
                         memoized in a mapping-memo store beside the
                         point store (same locked-append + compacted
                         discipline) and shared by --workers processes
    --check-map-agreement
                         exit non-zero if ng-timeloop's mapping
                         evaluation and ngpc's tile model disagree by
                         more than the ~7% cross-validation band on any
                         point (the CI gate; implies --map-search)

OUTPUT:
    --top N              frontier rows to print (default: 16)
    --per-app            also print each app's own Pareto frontier
    --csv PATH           write every evaluated point as CSV
    --json PATH          write spec + stats + points + frontier as JSON
    --check-headline     exit non-zero if the paper's NGPC-64 NFP
                         (hashgrid, 1 GHz, 1MB/8, 64x64 MACs, 16 engines,
                         1 lane, 64-deep FIFO) was evaluated but is NOT on
                         the cross-app Pareto frontier; under --search it
                         additionally requires the searcher to *recover*
                         that point within its budget (the CI guard)
    --help               this text

EXIT CODES (shared by every mode; a worker's code is read back by its
coordinator, a check's by CI):
    0    success
    1    run failed (I/O, bad spec file content, failed paper check)
    2    usage or spec mistake — retrying the same invocation cannot help
    3    a worker evaluated its slice but could not persist it to the store
    4    a --check audit (fsck --check, trace --check) found defects
    130  drained gracefully after SIGINT/SIGTERM; `dse resume` finishes the job
    131  hard exit on a second signal before the drain finished
";

/// A CLI failure carrying the process exit code. Plain `String` errors
/// convert at code 1 (generic failure); usage/spec mistakes exit with
/// [`ng_dse::distrib::EXIT_USAGE`] and a worker that evaluated its
/// slice but could not persist it exits with
/// [`ng_dse::distrib::EXIT_STORE_APPEND`], so the coordinator can map
/// the code back to a human-readable cause.
struct CliError {
    code: u8,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 1, message }
    }
}

/// A usage/spec mistake: retrying the same invocation cannot help.
fn usage_err(message: String) -> CliError {
    CliError { code: ng_dse::distrib::EXIT_USAGE as u8, message }
}

/// A `--check` audit found defects in the artifact it examined.
fn check_err(message: String) -> CliError {
    CliError { code: ng_dse::distrib::EXIT_CHECK_FAILED as u8, message }
}

/// The run drained gracefully on SIGINT/SIGTERM; `dse resume` owes the
/// tail.
fn interrupted_err(message: String) -> CliError {
    CliError { code: ng_dse::distrib::EXIT_INTERRUPTED as u8, message }
}

struct Cli {
    spec: SweepSpec,
    constraints: Constraints,
    threads: Option<usize>,
    workers: Option<usize>,
    worker_shard: Option<(usize, usize)>,
    cache_dir: Option<String>,
    no_cache: bool,
    cache_stats: bool,
    auto_compact: Option<usize>,
    top: usize,
    per_app: bool,
    csv: Option<String>,
    json: Option<String>,
    check_headline: bool,
    /// Deliberately NOT a report flag: workers accept `--map-search`
    /// and seed the shared mapping memo with their own slices.
    map_search: bool,
    check_map_agreement: bool,
    search: Option<ng_dse::SearchStrategy>,
    budget: Option<usize>,
    seed: Option<u64>,
    trace: Option<String>,
    faults: Option<String>,
    stall_timeout: Option<f64>,
    metrics: bool,
    quiet: bool,
    /// Outcome/report-producing flags seen on the command line, in
    /// order — worker mode rejects all of them (a worker produces no
    /// outcome), while constraints arriving via a `--spec` file pass
    /// through untouched (the coordinator ships constraint-bearing
    /// specs to its workers).
    report_flags: Vec<&'static str>,
}

fn parse_list<T>(
    flag: &str,
    value: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, String> {
    let items: Vec<T> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).ok_or_else(|| format!("{flag}: cannot parse `{s}`")))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(format!("{flag}: empty list"));
    }
    Ok(items)
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut preset: Option<String> = None;
    let mut spec_file: Option<String> = None;
    let mut cli = Cli {
        spec: SweepSpec::paper(),
        constraints: Constraints::NONE,
        threads: None,
        workers: None,
        worker_shard: None,
        cache_dir: None,
        no_cache: false,
        cache_stats: false,
        auto_compact: None,
        top: 16,
        per_app: false,
        csv: None,
        json: None,
        check_headline: false,
        map_search: false,
        check_map_agreement: false,
        search: None,
        budget: None,
        seed: None,
        trace: None,
        faults: None,
        stall_timeout: None,
        metrics: false,
        quiet: false,
        report_flags: Vec::new(),
    };
    // Axis overrides are applied after the base spec is chosen.
    let mut overrides: Vec<(String, String)> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--preset" => preset = Some(value("--preset")?),
            "--spec" => spec_file = Some(value("--spec")?),
            "--apps" | "--encodings" | "--nfp-units" | "--clocks" | "--pixels" | "--sram-kb"
            | "--banks" | "--engines" | "--mac-rows" | "--mac-cols" | "--lanes" | "--fifo" => {
                let v = value(arg)?;
                overrides.push((arg.clone(), v));
            }
            "--search" => {
                // The strategy operand is optional: `--search` alone
                // means hill climbing.
                let strategy = match it.clone().next() {
                    Some(next) if !next.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        ng_dse::SearchStrategy::parse(v).ok_or_else(|| {
                            format!("--search: unknown strategy `{v}` (hill/evolve)")
                        })?
                    }
                    _ => ng_dse::SearchStrategy::HillClimb,
                };
                cli.search = Some(strategy);
            }
            "--budget" => {
                cli.budget = Some(value(arg)?.parse().map_err(|_| "--budget: not a number")?)
            }
            "--seed" => cli.seed = Some(value(arg)?.parse().map_err(|_| "--seed: not a number")?),
            "--max-area" => {
                cli.report_flags.push("--max-area");
                cli.constraints.max_area_pct =
                    Some(value(arg)?.parse().map_err(|_| "--max-area: not a number")?)
            }
            "--max-power" => {
                cli.report_flags.push("--max-power");
                cli.constraints.max_power_pct =
                    Some(value(arg)?.parse().map_err(|_| "--max-power: not a number")?)
            }
            "--min-speedup" => {
                cli.report_flags.push("--min-speedup");
                cli.constraints.min_speedup =
                    Some(value(arg)?.parse().map_err(|_| "--min-speedup: not a number")?)
            }
            "--threads" => {
                cli.threads = Some(value(arg)?.parse().map_err(|_| "--threads: not a number")?)
            }
            "--workers" => {
                let n: usize = value(arg)?.parse().map_err(|_| "--workers: not a number")?;
                if n == 0 {
                    return Err("--workers: need at least 1".to_string());
                }
                cli.workers = Some(n);
            }
            "--worker-shard" => {
                let v = value(arg)?;
                cli.worker_shard = Some(ng_dse::distrib::parse_shard_arg(&v).ok_or_else(|| {
                    format!("--worker-shard: expected i/N with 0 <= i < N, got `{v}`")
                })?);
            }
            "--stall-timeout" => {
                let secs: f64 = value(arg)?.parse().map_err(|_| "--stall-timeout: not a number")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--stall-timeout: need a positive number of seconds".to_string());
                }
                cli.stall_timeout = Some(secs);
            }
            "--cache-dir" => cli.cache_dir = Some(value(arg)?),
            "--no-cache" => cli.no_cache = true,
            "--auto-compact" => {
                let n: usize = value(arg)?.parse().map_err(|_| "--auto-compact: not a number")?;
                if n == 0 {
                    return Err("--auto-compact: threshold must be at least 1".to_string());
                }
                cli.auto_compact = Some(n);
            }
            "--trace" => cli.trace = Some(value(arg)?),
            "--faults" => cli.faults = Some(value(arg)?),
            "--metrics" => cli.metrics = true,
            "--quiet" => cli.quiet = true,
            "--cache-stats" => {
                cli.report_flags.push("--cache-stats");
                cli.cache_stats = true;
            }
            "--top" => {
                cli.report_flags.push("--top");
                cli.top = value(arg)?.parse().map_err(|_| "--top: not a number")?;
            }
            "--per-app" => {
                cli.report_flags.push("--per-app");
                cli.per_app = true;
            }
            "--csv" => {
                cli.report_flags.push("--csv");
                cli.csv = Some(value(arg)?);
            }
            "--json" => {
                cli.report_flags.push("--json");
                cli.json = Some(value(arg)?);
            }
            "--check-headline" => {
                cli.report_flags.push("--check-headline");
                cli.check_headline = true;
            }
            "--map-search" => cli.map_search = true,
            "--check-map-agreement" => {
                cli.report_flags.push("--check-map-agreement");
                cli.check_map_agreement = true;
                cli.map_search = true;
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    if preset.is_some() && spec_file.is_some() {
        return Err("--preset and --spec are mutually exclusive".to_string());
    }
    if let Some(name) = preset {
        cli.spec = SweepSpec::preset(&name).ok_or_else(|| {
            format!("unknown preset `{name}` (have: {})", SweepSpec::PRESETS.join(", "))
        })?;
    } else if let Some(path) = spec_file {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        cli.spec = SweepSpec::from_toml_str(&text).map_err(|e| e.to_string())?;
        // A spec file may carry its own constraints; CLI flags override.
        let file_c = cli.spec.constraints;
        cli.constraints = Constraints {
            max_area_pct: cli.constraints.max_area_pct.or(file_c.max_area_pct),
            max_power_pct: cli.constraints.max_power_pct.or(file_c.max_power_pct),
            min_speedup: cli.constraints.min_speedup.or(file_c.min_speedup),
        };
    }

    for (flag, v) in overrides {
        match flag.as_str() {
            "--apps" => cli.spec.apps = parse_list(&flag, &v, ng_dse::spec::parse_app)?,
            "--encodings" => {
                cli.spec.encodings = parse_list(&flag, &v, ng_dse::spec::parse_encoding)?
            }
            "--nfp-units" => cli.spec.nfp_units = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--clocks" => cli.spec.clock_ghz = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--pixels" => cli.spec.pixels = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--sram-kb" => cli.spec.grid_sram_kb = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--banks" => cli.spec.grid_sram_banks = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--engines" => cli.spec.encoding_engines = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--mac-rows" => cli.spec.mac_rows = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--mac-cols" => cli.spec.mac_cols = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--lanes" => cli.spec.lanes_per_engine = parse_list(&flag, &v, |s| s.parse().ok())?,
            "--fifo" => cli.spec.input_fifo_depth = parse_list(&flag, &v, |s| s.parse().ok())?,
            _ => unreachable!("override flags are filtered above"),
        }
    }
    Ok(Some(cli))
}

/// Whether the paper's NGPC-64 headline configuration survived frontier
/// extraction. Returns `None` when the headline point was not evaluated
/// (axis overrides can sweep it away entirely), `Some(on_frontier)`
/// otherwise.
fn headline_check(outcome: &ng_dse::SweepOutcome, constraints: &Constraints) -> Option<bool> {
    let is_headline = |a: &&ng_dse::ArchPoint| is_headline_arch(a);
    if !outcome.cross_app().iter().any(|a| is_headline(&a)) {
        return None;
    }
    let frontier = outcome.cross_app_frontier(constraints);
    let headline = frontier.iter().find(is_headline);
    match headline {
        Some(a) => println!(
            "\npaper check: NGPC-64 (hashgrid, 1 GHz, 1MB/8-bank, 64x64/16e) is on the frontier — \
             {:.2}x avg, {:.2}% area, {:.2}% power (paper: 39.04x, ~36.2%, ~22.1%)",
            a.avg_speedup, a.area_pct_of_gpu, a.power_pct_of_gpu
        ),
        None => println!(
            "\npaper check: NGPC-64 headline point is NOT on the frontier under constraints [{}]",
            describe_constraints(constraints)
        ),
    }
    Some(headline.is_some())
}

/// The headline predicate shared by sweep and search checks — see
/// [`ng_dse::ArchPoint::is_paper_organisation`] for what it matches
/// (and why the lane/FIFO axes are deliberately left free).
fn is_headline_arch(a: &ng_dse::ArchPoint) -> bool {
    a.is_paper_organisation()
}

/// Mark a job manifest interrupted (progress snapshot included), save
/// it, and build the user-facing drain message with its resume hint.
fn finish_job_interrupted(
    job: &mut Option<ng_dse::job::JobManifest>,
    delivered: usize,
    detail: &str,
) -> String {
    let hint = match job {
        Some(j) => {
            j.status = ng_dse::job::JobStatus::Interrupted;
            j.delivered = delivered;
            if let Err(e) = j.save() {
                eprintln!("dse: could not update job manifest {} ({e})", j.id);
            }
            format!("; finish with `dse resume {}`", j.id)
        }
        None => String::new(),
    };
    format!("interrupted: {detail}{hint}")
}

/// Mark a job manifest done and save it (best effort — the results are
/// already in the store and on stdout).
fn finish_job_done(job: &mut Option<ng_dse::job::JobManifest>, delivered: usize) {
    if let Some(j) = job {
        j.status = ng_dse::job::JobStatus::Done;
        j.delivered = delivered;
        if let Err(e) = j.save() {
            eprintln!("dse: could not update job manifest {} ({e})", j.id);
        }
    }
}

/// Guided-search mode: run the searcher instead of the exhaustive
/// sweep, and (under `--check-headline`) require the NGPC-64 headline
/// point to be *recovered* — found and kept non-dominated — within the
/// budget.
fn run_search(
    cli: &Cli,
    strategy: ng_dse::SearchStrategy,
    mut job: Option<ng_dse::job::JobManifest>,
) -> Result<(), CliError> {
    if cli.csv.is_some() || cli.json.is_some() {
        return Err(usage_err(
            "--csv/--json emit full sweep outcomes; rerun without --search".to_string(),
        ));
    }
    if cli.per_app {
        return Err(usage_err(
            "--per-app reads a full sweep's per-app points; rerun without --search".to_string(),
        ));
    }
    if cli.threads.is_some() {
        return Err(usage_err(
            "--threads: guided search is sequential by design (one memoized \
             evaluation context); rerun without --search for the parallel sweep"
                .to_string(),
        ));
    }
    let mut searcher = ng_dse::Searcher::new();
    if cli.no_cache {
        searcher = searcher.without_cache();
    } else if let Some(dir) = &cli.cache_dir {
        searcher = searcher.with_cache_dir(dir);
    }
    let mut search = ng_dse::SearchSpec::for_space(&cli.spec);
    search.strategy = strategy;
    if let Some(budget) = cli.budget {
        search.budget = budget;
    }
    if let Some(seed) = cli.seed {
        search.seed = seed;
    }
    let outcome = searcher
        .run_draining(&cli.spec, &search, ng_dse::cancel::cancelled)
        .map_err(|e| e.to_string())?;
    if outcome.stats.interrupted {
        let delivered = outcome.stats.cache_hits + outcome.stats.evaluations;
        return Err(interrupted_err(finish_job_interrupted(
            &mut job,
            delivered,
            &format!(
                "search drained after {} of {} budgeted evaluations; the flushed prefix \
                 replays as warm hits",
                outcome.stats.evaluations, outcome.stats.budget
            ),
        )));
    }
    finish_job_done(&mut job, outcome.stats.cache_hits + outcome.stats.evaluations);
    let _span = ng_obs::span("report");
    ng_dse::report::print_search_report(&outcome, &cli.constraints, cli.top);
    if cli.cache_stats {
        println!(
            "cache stats: {} hits, {} evaluated{}",
            outcome.stats.cache_hits,
            outcome.stats.evaluations,
            match &outcome.cache_path {
                Some(p) => format!("; store: {}", p.display()),
                None => "; cache disabled".to_string(),
            },
        );
    }

    if cli.map_search {
        // The search reports an architecture-level frontier; rebuild
        // one point per (frontier architecture, app) and annotate those
        // — the mapping comparison for exactly the designs the search
        // recommends.
        let apps = &cli.spec.apps;
        let points: Vec<ng_dse::DesignPoint> = outcome
            .frontier
            .iter()
            .enumerate()
            .flat_map(|(i, arch)| {
                let arch = *arch;
                apps.iter().enumerate().map(move |(j, &app)| ng_dse::DesignPoint {
                    index: i * apps.len() + j,
                    app,
                    encoding: arch.encoding,
                    pixels: arch.pixels,
                    nfp_units: arch.nfp_units,
                    clock_ghz: arch.clock_ghz,
                    grid_sram_kb: arch.grid_sram_kb,
                    grid_sram_banks: arch.grid_sram_banks,
                    encoding_engines: arch.encoding_engines,
                    mac_rows: arch.mac_rows,
                    mac_cols: arch.mac_cols,
                    lanes_per_engine: arch.lanes_per_engine,
                    input_fifo_depth: arch.input_fifo_depth,
                })
            })
            .collect();
        let evaluated = ng_dse::sweep::evaluate_points(&points, 1);
        let store = if cli.no_cache {
            None
        } else {
            let dir =
                cli.cache_dir.clone().unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
            Some(ng_dse::MapMemoStore::new(dir))
        };
        let annotated = ng_dse::annotate(&evaluated, store.as_ref());
        println!("{}", annotated.headline());
        if cli.check_map_agreement && annotated.max_disagreement() > ng_dse::AGREEMENT_BAND {
            return Err(check_err(format!(
                "--check-map-agreement: timeloop-vs-ngpc max disagreement {:.2}% exceeds \
                 the {:.0}% cross-validation band",
                annotated.max_disagreement() * 100.0,
                ng_dse::AGREEMENT_BAND * 100.0
            )));
        }
    }

    if cli.check_headline || cli.spec.name == "guided-lanes" {
        let headline = outcome
            .frontier
            .iter()
            .filter(|a| cli.constraints.admits(&a.objectives()))
            .find(|a| is_headline_arch(a));
        match headline {
            Some(a) => println!(
                "\npaper check: guided search recovered the NGPC-64 organisation (hashgrid, \
                 1 GHz, 1MB/8-bank, 64x64/16e; FIFO right-sized to {} entries, {} lane(s)) \
                 with {} of {} evaluations ({:.2}% of the space) — {:.2}x avg, {:.2}% area, \
                 {:.2}% power",
                a.input_fifo_depth,
                a.lanes_per_engine,
                outcome.stats.evaluations,
                outcome.stats.space_points,
                100.0 * outcome.stats.budget_fraction_used(),
                a.avg_speedup,
                a.area_pct_of_gpu,
                a.power_pct_of_gpu
            ),
            None => println!(
                "\npaper check: guided search did NOT recover the NGPC-64 headline point \
                 (budget {}, {} evaluations)",
                outcome.stats.budget, outcome.stats.evaluations
            ),
        }
        if cli.check_headline {
            if headline.is_none() {
                return Err("--check-headline: guided search failed to recover the paper's \
                            NGPC-64 point within its budget"
                    .to_string()
                    .into());
            }
            if outcome.stats.evaluations > outcome.stats.budget {
                return Err(format!(
                    "--check-headline: search overspent its budget ({} > {})",
                    outcome.stats.evaluations, outcome.stats.budget
                )
                .into());
            }
        }
    }
    Ok(())
}

/// Worker mode (`--worker-shard i/N`): evaluate one slice, persist it
/// to the shared store, report one summary line. The coordinator's
/// merge — not this process — assembles the sweep.
fn run_worker(cli: &Cli, shard: usize, of: usize) -> Result<(), CliError> {
    // Worker-scoped faults (kill/hang/heartbeat-delay) fire only in
    // processes that declare themselves workers — the coordinator and
    // in-process backends share the same armed plan but stay immune.
    ng_fault::mark_worker();
    if cli.no_cache {
        return Err(usage_err(
            "--worker-shard: the point store is the result channel; \
             --no-cache would discard this worker's output"
                .to_string(),
        ));
    }
    // A worker produces no outcome of its own — reject flags that
    // promise one rather than silently ignoring them.
    if let Some(flag) = cli.report_flags.first() {
        return Err(usage_err(format!(
            "{flag}: a worker evaluates one slice and exits; run {flag} on the \
             coordinator (--workers) or a plain sweep instead"
        )));
    }
    let cache_dir = cli.cache_dir.clone().unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
    let threads = cli.threads.unwrap_or_else(ng_dse::pool::available_threads);
    // The worker drains on a direct signal *or* on the coordinator's
    // drain flag (forwarded when the coordinator got the signal and the
    // worker did not share its terminal's process group).
    let summary = ng_dse::distrib::run_worker_slice_draining(
        &cli.spec,
        shard,
        of,
        Path::new(&cache_dir),
        threads,
        &ng_dse::cancel::cancelled,
    )
    .map_err(|e| {
        // The exit code tells the coordinator what went wrong:
        // a spec/usage mistake cannot be fixed by a respawn,
        // while a store-append failure means the slice was
        // (probably) evaluated but never persisted.
        let code = match &e {
            ng_dse::DistribError::Io(_) => ng_dse::distrib::EXIT_STORE_APPEND as u8,
            ng_dse::DistribError::Spec(_) | ng_dse::DistribError::Shard { .. } => {
                ng_dse::distrib::EXIT_USAGE as u8
            }
        };
        CliError { code, message: e.to_string() }
    })?;
    println!("{summary}");
    if summary.interrupted {
        return Err(interrupted_err(format!(
            "worker {shard}/{of} drained early; its completed points are flushed to the store"
        )));
    }
    // `--map-search` workers seed the shared mapping memo with their own
    // slices: re-read the slice (all hits now — the worker just appended
    // it) and annotate against the memo store, so concurrent workers
    // split the mapspace enumerations and the coordinator's post-merge
    // annotation runs warm.
    if cli.map_search {
        let cache = ng_dse::EvalCache::new(&cache_dir);
        let slice = ng_dse::distrib::shard_points(&cli.spec.points(), shard, of);
        let points: Vec<ng_dse::EvaluatedPoint> =
            cache.lookup(&slice).into_iter().flatten().collect();
        let store = ng_dse::MapMemoStore::new(&cache_dir);
        let a = ng_dse::annotate(&points, Some(&store));
        println!(
            "worker {shard}/{of} map-search: {} search(es), {} memo hit(s)",
            a.evals, a.memo_hits
        );
    }
    Ok(())
}

/// Coordinator mode (`--workers N`): spawn workers, merge from the
/// store, then report exactly like a single-process sweep — or, on a
/// signal, forward the drain to the workers and return the drain
/// record.
fn run_distributed(cli: &Cli, workers: usize) -> Result<ng_dse::DistribRun, String> {
    if cli.no_cache {
        return Err("--workers: the multi-process backend coordinates through the point \
                    store; rerun without --no-cache"
            .to_string());
    }
    let mut coordinator = ng_dse::Coordinator::new(workers)
        .with_quiet(cli.quiet)
        .with_auto_compact(cli.auto_compact)
        .with_map_search(cli.map_search);
    if let Some(dir) = &cli.cache_dir {
        coordinator = coordinator.with_cache_dir(dir);
    }
    if let Some(threads) = cli.threads {
        coordinator = coordinator.with_threads_per_worker(threads);
    }
    if let Some(secs) = cli.stall_timeout {
        coordinator = coordinator.with_stall_after(std::time::Duration::from_secs_f64(secs));
    }
    let run = coordinator
        .run_draining(&cli.spec, ng_dse::cancel::cancelled)
        .map_err(|e| e.to_string())?;
    let worker_reports = match &run {
        ng_dse::DistribRun::Complete(d) => &d.workers,
        ng_dse::DistribRun::Interrupted(d) => &d.workers,
    };
    for w in worker_reports {
        if w.ok {
            println!("{}", w.stdout);
        } else if w.exit == Some(ng_dse::distrib::EXIT_INTERRUPTED) {
            // A drained worker is not a failure: it flushed what it
            // had and left the tail for `dse resume`.
            println!("{}", w.stdout);
        } else {
            eprintln!(
                "dse: worker {} failed (its slice was recovered by the coordinator){}",
                w.shard,
                if w.stderr.is_empty() { String::new() } else { format!(": {}", w.stderr) },
            );
            eprintln!("dse: {}", w.status_line());
        }
    }
    if let ng_dse::DistribRun::Complete(d) = &run {
        if d.recovered > 0 {
            println!("coordinator recovered {} point(s) no worker delivered", d.recovered);
        }
    }
    Ok(run)
}

/// `dse trace LEDGER.jsonl`: summarize a recorded run ledger — the
/// per-stage profile, per-process counters, and the balance/invariant
/// verdict — with optional Chrome trace export and CI-gate mode.
fn run_trace(args: &[String]) -> Result<(), CliError> {
    let mut ledger_path: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut check = false;
    let mut min_coverage = 95.0_f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--chrome" => {
                chrome = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--chrome needs a path".to_string()))?,
                )
            }
            "--check" => check = true,
            "--min-coverage" => {
                let pct = it
                    .next()
                    .ok_or_else(|| usage_err("--min-coverage needs a percent".to_string()))?;
                min_coverage = pct
                    .parse()
                    .map_err(|_| usage_err(format!("--min-coverage: `{pct}` is not a number")))?;
            }
            other if !other.starts_with("--") && ledger_path.is_none() => {
                ledger_path = Some(other.to_string())
            }
            other => {
                return Err(usage_err(format!("trace: unexpected argument `{other}` (try --help)")))
            }
        }
    }
    let path =
        ledger_path.ok_or_else(|| usage_err("trace: need a LEDGER.jsonl path".to_string()))?;
    let ledger = ng_obs::Ledger::read(Path::new(&path)).map_err(|e| format!("{path}: {e}"))?;
    let verdict = ledger.check();

    let pids: std::collections::BTreeSet<u64> =
        ledger.events.iter().filter_map(|e| e.num_field("pid")).collect();
    println!(
        "ledger {path}: {} events from {} process(es), {} skipped line(s)",
        ledger.events.len(),
        pids.len(),
        ledger.skipped_lines
    );

    let profile = ledger.profile();
    if profile.is_empty() {
        println!("no spans recorded");
    } else {
        let root_total = verdict.root.as_ref().map(|(_, t)| *t).unwrap_or(0);
        let rows: Vec<Vec<String>> = profile
            .iter()
            .map(|s| {
                let share = if root_total > 0 {
                    format!("{:.1}", 100.0 * s.total_us as f64 / root_total as f64)
                } else {
                    "-".to_string()
                };
                vec![
                    s.path.clone(),
                    s.calls.to_string(),
                    format!("{:.2}", s.total_us as f64 / 1000.0),
                    format!("{:.2}", s.self_us as f64 / 1000.0),
                    share,
                ]
            })
            .collect();
        print!(
            "\n{}",
            ng_dse::report::render_table(
                &["stage", "calls", "total ms", "self ms", "% of root"],
                &rows
            )
        );
    }

    let counters = ledger.final_counters();
    if !counters.is_empty() {
        println!("\ncounters (final cumulative value per process):");
        for ((pid, name), val) in &counters {
            println!("  pid {pid}  {name} = {val}");
        }
    }

    println!();
    match verdict.root {
        Some((ref root, total)) => println!(
            "root span: {root} ({:.2} ms); stage coverage {:.1}%",
            total as f64 / 1000.0,
            100.0 * verdict.coverage
        ),
        None => println!("root span: none recorded"),
    }
    if verdict.unbalanced.is_empty() {
        println!("spans: balanced");
    } else {
        println!("spans: UNBALANCED — {}", verdict.unbalanced.join(", "));
    }
    if verdict.invariant_violations.is_empty() {
        println!(
            "counter invariant (hits + fresh == points): holds for {} sweeping process(es)",
            verdict.sweeping_pids
        );
    } else {
        for v in &verdict.invariant_violations {
            println!("counter invariant VIOLATED: {v}");
        }
    }

    if let Some(out) = chrome {
        std::fs::write(&out, ledger.chrome_trace())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote Chrome trace to {out} (load in chrome://tracing or Perfetto)");
    }
    if check && !verdict.ok(min_coverage / 100.0) {
        return Err(check_err(format!(
            "trace --check failed: coverage {:.1}% (need >= {min_coverage}%), \
             {} unbalanced span(s), {} invariant violation(s)",
            100.0 * verdict.coverage,
            verdict.unbalanced.len(),
            verdict.invariant_violations.len()
        )));
    }
    Ok(())
}

/// `dse fsck [--repair] [--check]`: the store doctor — audit (and
/// optionally repair) the point store and a run ledger. See
/// [`ng_dse::fsck`] for the defect classes and repair guarantees.
fn run_fsck(args: &[String]) -> Result<(), CliError> {
    let mut cache_dir: Option<String> = None;
    let mut ledger: Option<String> = None;
    let mut repair = false;
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--cache-dir needs a value".to_string()))?,
                )
            }
            "--ledger" => {
                ledger = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--ledger needs a path".to_string()))?,
                )
            }
            "--repair" => repair = true,
            "--check" => check = true,
            other => {
                return Err(usage_err(format!("fsck: unexpected argument `{other}` (try --help)")))
            }
        }
    }
    let dir = cache_dir.unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
    let cache = ng_dse::EvalCache::new(&dir);
    let before = ng_dse::fsck::audit(&cache).map_err(|e| format!("fsck {dir}: {e}"))?;
    for shard in before.shards.iter().filter(|s| !s.is_clean()) {
        println!("{shard}");
    }
    for generation in before.generations.iter().filter(|g| !g.is_clean()) {
        println!("{generation}");
    }
    for shard in before.memo_shards.iter().filter(|s| !s.is_clean()) {
        println!("mapmemo {shard}");
    }
    for base in before.memo_bases.iter().filter(|g| !g.is_clean()) {
        println!("mapmemo {base}");
    }
    println!("{}", before.summary());
    let mut defects = !before.is_clean();
    if repair && defects {
        let done = ng_dse::fsck::repair(&cache).map_err(|e| format!("fsck --repair {dir}: {e}"))?;
        for q in &done.quarantined {
            println!(
                "quarantined shard {q:x} -> shard-{q:x}.csv.quarantine (unreadable; its \
                 points will re-evaluate)"
            );
        }
        for q in &done.memo_quarantined {
            println!(
                "quarantined mapmemo shard {q:x} -> mapmemo/shard-{q:x}.csv.quarantine \
                 (unreadable; its mappings will re-search)"
            );
        }
        if done.recompacted {
            println!(
                "corrupt generation quarantined (*.ngcb.quarantine); base rebuilt from the \
                 surviving layers"
            );
        }
        let after = ng_dse::fsck::audit(&cache).map_err(|e| format!("fsck {dir}: {e}"))?;
        if !after.is_clean() {
            return Err(format!(
                "fsck --repair: store still dirty after repair: {}",
                after.summary()
            )
            .into());
        }
        println!("{}", after.summary());
    }
    if let Some(path) = &ledger {
        let (events, torn) = ng_dse::fsck::fsck_ledger(Path::new(path), repair)
            .map_err(|e| format!("fsck {path}: {e}"))?;
        println!(
            "ledger {path}: {events} event(s), {torn} torn line(s){}",
            if torn > 0 && repair { " — removed" } else { "" },
        );
        defects |= torn > 0;
    }
    if check && defects {
        return Err(check_err(if repair {
            "fsck --check: defects were found (and repaired); the previous run left damage"
                .to_string()
        } else {
            "fsck --check: defects found — run `dse fsck --repair`".to_string()
        }));
    }
    Ok(())
}

/// `dse resume [JOB]`: re-enter an interrupted (or crashed) job from
/// its durable manifest and evaluate only the missing tail — the point
/// store replays everything already delivered as warm hits, so the
/// completed run's output is byte-identical to an uninterrupted one.
fn run_resume(args: &[String]) -> Result<(), CliError> {
    let mut operand: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--cache-dir needs a value".to_string()))?,
                )
            }
            "--quiet" => quiet = true,
            other if !other.starts_with("--") && operand.is_none() => {
                operand = Some(other.to_string())
            }
            other => {
                return Err(usage_err(format!(
                    "resume: unexpected argument `{other}` (try --help)"
                )))
            }
        }
    }
    let lookup_dir = cache_dir.clone().unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
    let manifest = match &operand {
        Some(op) => {
            ng_dse::job::JobManifest::find(Path::new(&lookup_dir), op).map_err(usage_err)?
        }
        None => {
            ng_dse::job::JobManifest::latest_resumable(Path::new(&lookup_dir)).ok_or_else(|| {
                usage_err(format!(
                    "resume: no resumable job under {lookup_dir}/jobs (none recorded, or all done)"
                ))
            })?
        }
    };
    if manifest.status == ng_dse::job::JobStatus::Done {
        return Err(usage_err(format!(
            "resume: job {} already ran to completion; re-run the original command for a \
             (fully cached) repeat",
            manifest.id
        )));
    }
    if !manifest.models_match() {
        return Err(format!(
            "resume: job {} was computed under models {} fingerprint {:016x}; this binary is \
             {} fingerprint {:016x} — its results live in a different store generation, so \
             rerun the sweep instead",
            manifest.id,
            manifest.model_version,
            manifest.fingerprint,
            ng_dse::MODEL_VERSION,
            ng_dse::model_fingerprint()
        )
        .into());
    }
    let spec = manifest
        .spec()
        .map_err(|e| CliError::from(format!("resume: manifest {}: {e}", manifest.id)))?;
    let search = match manifest.search_strategy.as_deref() {
        Some(s) => Some(ng_dse::SearchStrategy::parse(s).ok_or_else(|| {
            CliError::from(format!(
                "resume: manifest {}: unknown search strategy `{s}`",
                manifest.id
            ))
        })?),
        None => None,
    };
    eprintln!(
        "dse: resuming {} ({} mode; {} of {} points were delivered before the interrupt)",
        manifest.id,
        manifest.mode.as_str(),
        manifest.delivered,
        manifest.total_points
    );
    ng_dse::obs_counters::jobs_resumed().incr();
    let cli = Cli {
        spec,
        constraints: Constraints {
            max_area_pct: manifest.max_area,
            max_power_pct: manifest.max_power,
            min_speedup: manifest.min_speedup,
        },
        threads: manifest.threads,
        workers: manifest.workers,
        worker_shard: None,
        cache_dir: Some(manifest.cache_dir.clone()),
        no_cache: false,
        cache_stats: false,
        auto_compact: None,
        top: 16,
        per_app: false,
        csv: manifest.csv.clone(),
        json: manifest.json_out.clone(),
        check_headline: false,
        map_search: manifest.map_search,
        check_map_agreement: false,
        search,
        budget: manifest.budget,
        seed: manifest.seed,
        trace: None,
        faults: None,
        stall_timeout: None,
        metrics: false,
        quiet,
        report_flags: Vec::new(),
    };
    run_parsed(&cli, Some(manifest))
}

/// `dse chaos`: the seeded soak harness — see [`ng_dse::chaos`].
fn run_chaos(args: &[String]) -> Result<(), CliError> {
    let mut opts = ng_dse::chaos::ChaosOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--iterations" => {
                let v =
                    it.next().ok_or_else(|| usage_err("--iterations needs a count".to_string()))?;
                opts.iterations = v
                    .parse()
                    .map_err(|_| usage_err(format!("--iterations: `{v}` is not a number")))?;
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| usage_err("--seed needs a value".to_string()))?;
                opts.seed =
                    v.parse().map_err(|_| usage_err(format!("--seed: `{v}` is not a number")))?;
            }
            "--cache-dir" => {
                let v =
                    it.next().ok_or_else(|| usage_err("--cache-dir needs a value".to_string()))?;
                opts.scratch_dir = Some(std::path::PathBuf::from(v));
            }
            other => {
                return Err(usage_err(format!("chaos: unexpected argument `{other}` (try --help)")))
            }
        }
    }
    if opts.iterations == 0 {
        return Err(usage_err("--iterations: need at least 1".to_string()));
    }
    let report = ng_dse::chaos::run_soak(&opts).map_err(CliError::from)?;
    print!("{report}");
    let failed = report.failed_iterations();
    if !failed.is_empty() {
        return Err(format!(
            "chaos: {} of {} iteration(s) failed — replay one alone with \
             `dse chaos --iterations 1 --seed {}`",
            failed.len(),
            opts.iterations,
            failed[0].schedule_seed
        )
        .into());
    }
    Ok(())
}

/// `dse compact [--cache-dir DIR]`: fold the store's live CSV shards
/// into a fresh binary generation (see [`ng_dse::compact`]). Arms a
/// fault plan from `--faults`/`NG_DSE_FAULTS` first, so crash-safety
/// tests can kill the compactor at an exact protocol stage.
fn run_compact(args: &[String]) -> Result<(), String> {
    let mut cache_dir: Option<String> = None;
    let mut faults: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next().cloned().ok_or_else(|| "--cache-dir needs a value".to_string())?,
                )
            }
            "--faults" => {
                faults =
                    Some(it.next().cloned().ok_or_else(|| "--faults needs a plan".to_string())?)
            }
            other => return Err(format!("compact: unexpected argument `{other}` (try --help)")),
        }
    }
    match &faults {
        Some(plan) => ng_fault::install_str(plan).map_err(|e| format!("--faults: {e}"))?,
        None => {
            ng_fault::init_from_env().map_err(|e| format!("{}: {e}", ng_fault::FAULTS_ENV))?;
        }
    }
    let dir = cache_dir.unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
    let cache = ng_dse::EvalCache::new(&dir);
    let report = ng_dse::compact::compact(&cache).map_err(|e| format!("compact {dir}: {e}"))?;
    println!("{report}");
    // The mapping memo follows the same compaction cadence: fold its
    // CSV shards into a fresh checksummed base generation.
    let memo = ng_dse::MapMemoStore::new(&dir);
    let memo_report = memo.compact().map_err(|e| format!("compact mapmemo {dir}: {e}"))?;
    match (memo_report.rows, memo_report.seq) {
        (Some(rows), Some(seq)) => {
            println!("mapping memo: folded {rows} row(s) into base generation {seq}")
        }
        _ => println!("mapping memo: nothing to fold"),
    }
    Ok(())
}

/// `--metrics`: the in-process stage profile and counter growth for
/// this run, on stderr (stdout stays reserved for the report).
fn print_metrics(before: &ng_obs::CounterSnapshot) {
    let profile = ng_obs::profile_snapshot();
    eprintln!("\n-- stage profile (this process) --");
    let rows: Vec<Vec<String>> = profile
        .iter()
        .map(|(path, s)| {
            vec![
                path.clone(),
                s.calls.to_string(),
                format!("{:.2}", s.total_us as f64 / 1000.0),
                format!("{:.2}", s.self_us as f64 / 1000.0),
            ]
        })
        .collect();
    eprint!("{}", ng_dse::report::render_table(&["stage", "calls", "total ms", "self ms"], &rows));
    eprintln!("\n-- counters (growth this run) --");
    let delta = ng_obs::counter::snapshot().delta_since(before);
    if delta.is_empty() {
        eprintln!("(no counters moved)");
    }
    for (name, val) in delta.iter() {
        eprintln!("{name} = {val}");
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    // The watcher is installed before any work: the first
    // SIGINT/SIGTERM drains, the second hard-exits (see
    // `ng_dse::cancel`). Subcommands that never evaluate points keep
    // the default die-on-signal semantics by simply never checking the
    // token.
    ng_dse::cancel::install_signal_watcher();
    match args.first().map(String::as_str) {
        Some("trace") => return run_trace(&args[1..]),
        Some("fsck") => return run_fsck(&args[1..]),
        Some("compact") => return run_compact(&args[1..]).map_err(CliError::from),
        Some("resume") => return run_resume(&args[1..]),
        Some("chaos") => return run_chaos(&args[1..]),
        _ => {}
    }
    let Some(cli) = parse_args(args).map_err(usage_err)? else { return Ok(()) };
    run_parsed(&cli, None)
}

/// Everything after argument parsing: observability/fault arming, the
/// root span, mode dispatch, counter flush. `resumed` carries the job
/// manifest when entered through `dse resume`.
fn run_parsed(cli: &Cli, resumed: Option<ng_dse::job::JobManifest>) -> Result<(), CliError> {
    // Recording starts before the root span so the ledger sees every
    // event; `--trace` also exports the path so worker processes
    // spawned by `--workers` append to the same ledger.
    if let Some(path) = &cli.trace {
        let abs = std::path::absolute(path).map_err(|e| format!("--trace {path}: {e}"))?;
        ng_obs::sink::enable(&abs).map_err(|e| format!("--trace {path}: {e}"))?;
        std::env::set_var(ng_obs::sink::TRACE_ENV, &abs);
    } else {
        ng_obs::sink::init_from_env();
    }
    // Arm the fault plan before any injection point can fire; `--faults`
    // also exports the plan so spawned workers inherit it (mirroring
    // `--trace`).
    if let Some(plan) = &cli.faults {
        ng_fault::install_str(plan).map_err(|e| usage_err(format!("--faults: {e}")))?;
        std::env::set_var(ng_fault::FAULTS_ENV, plan);
    } else {
        ng_fault::init_from_env()
            .map_err(|e| usage_err(format!("{}: {e}", ng_fault::FAULTS_ENV)))?;
    }
    let counters_before = ng_obs::counter::snapshot();
    let result = {
        let _root = ng_obs::span("dse");
        run_mode(cli, resumed)
    };
    // The root span is closed: flush final counter values, then the
    // optional in-process summary.
    ng_obs::emit_counters();
    if cli.metrics {
        print_metrics(&counters_before);
    }
    result
}

/// Everything between the `dse` root span's open and close: mode
/// dispatch and reporting.
fn run_mode(cli: &Cli, resumed: Option<ng_dse::job::JobManifest>) -> Result<(), CliError> {
    if cli.workers.is_some() && cli.worker_shard.is_some() {
        return Err(usage_err(
            "--workers (coordinator) and --worker-shard (worker) are mutually exclusive"
                .to_string(),
        ));
    }
    if cli.search.is_some() && (cli.workers.is_some() || cli.worker_shard.is_some()) {
        return Err(usage_err(
            "--search is sequential by design; rerun without --workers/--worker-shard".to_string(),
        ));
    }
    if cli.auto_compact.is_some() && cli.no_cache {
        return Err(usage_err(
            "--auto-compact folds the point store; rerun without --no-cache".to_string(),
        ));
    }
    if let Some((shard, of)) = cli.worker_shard {
        return run_worker(cli, shard, of);
    }

    // Every cache-enabled run is durable: write a `Running` job
    // manifest before evaluating, finish it `Done` or `Interrupted`.
    // A manifest that cannot be written (exhausted disk) costs
    // resumability, never the run.
    let mut job: Option<ng_dse::job::JobManifest> = if cli.no_cache {
        None
    } else {
        let manifest = match resumed {
            Some(mut m) => {
                m.status = ng_dse::job::JobStatus::Running;
                m
            }
            None => {
                let mode = if cli.search.is_some() {
                    ng_dse::job::JobMode::Search
                } else if cli.workers.is_some() {
                    ng_dse::job::JobMode::Distrib
                } else {
                    ng_dse::job::JobMode::Sweep
                };
                let cache_dir =
                    cli.cache_dir.clone().unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
                let mut m = ng_dse::job::JobManifest::new(
                    mode,
                    &cli.spec,
                    &cache_dir,
                    cli.spec.point_count(),
                );
                m.threads = cli.threads;
                m.workers = cli.workers;
                m.csv = cli.csv.clone();
                m.json_out = cli.json.clone();
                m.search_strategy = cli.search.map(|s| s.slug().to_string());
                m.budget = cli.budget;
                m.seed = cli.seed;
                m.map_search = cli.map_search;
                m.max_area = cli.constraints.max_area_pct;
                m.max_power = cli.constraints.max_power_pct;
                m.min_speedup = cli.constraints.min_speedup;
                m
            }
        };
        match manifest.save() {
            Ok(_) => Some(manifest),
            Err(e) => {
                eprintln!(
                    "dse: could not write job manifest {} ({e}); this run is not resumable",
                    manifest.id
                );
                None
            }
        }
    };

    if let Some(strategy) = cli.search {
        return run_search(cli, strategy, job);
    }

    let outcome = if let Some(workers) = cli.workers {
        match run_distributed(cli, workers)? {
            ng_dse::DistribRun::Complete(d) => d.outcome,
            ng_dse::DistribRun::Interrupted(drained) => {
                return Err(interrupted_err(finish_job_interrupted(
                    &mut job,
                    drained.delivered,
                    &format!(
                        "distributed sweep drained with {} of {} points in the store \
                         ({} remaining)",
                        drained.delivered,
                        drained.total_points,
                        drained.remaining()
                    ),
                )));
            }
        }
    } else {
        let mut engine =
            SweepEngine::new().with_quiet(cli.quiet).with_auto_compact(cli.auto_compact);
        if let Some(threads) = cli.threads {
            engine = engine.with_threads(threads);
        }
        if cli.no_cache {
            engine = engine.without_cache();
        } else if let Some(dir) = &cli.cache_dir {
            engine = engine.with_cache_dir(dir);
        }
        match engine
            .run_draining(cli.spec.clone(), ng_dse::cancel::cancelled)
            .map_err(|e| e.to_string())?
        {
            ng_dse::SweepRun::Complete(outcome) => outcome,
            ng_dse::SweepRun::Interrupted(drained) => {
                let delivered = drained.cache_hits + drained.freshly_completed;
                return Err(interrupted_err(finish_job_interrupted(
                    &mut job,
                    delivered,
                    &format!(
                        "sweep drained with {} of {} points flushed ({} remaining)",
                        delivered,
                        drained.total_points,
                        drained.remaining()
                    ),
                )));
            }
        }
    };
    finish_job_done(&mut job, outcome.points.len());
    // The `--map-search` side table: computed post-merge against the
    // mapping memo beside the point store, never mutating the points —
    // everything downstream is byte-identical with the flag off.
    let annotations = if cli.map_search {
        let store = if cli.no_cache {
            None
        } else {
            let dir =
                cli.cache_dir.clone().unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
            Some(ng_dse::MapMemoStore::new(dir))
        };
        Some(ng_dse::annotate(&outcome.points, store.as_ref()))
    } else {
        None
    };
    // Frontier extraction + table rendering is real work on large
    // sweeps — span it so the ledger's coverage accounting sees it.
    let _span = ng_obs::span("report");
    print_report(&outcome, &cli.constraints, cli.top, cli.per_app);
    if let Some(a) = &annotations {
        println!("{}", a.headline());
    }
    if cli.cache_stats {
        println!("{}", ng_dse::report::cache_stats_line(&outcome));
        if outcome.cache_path.is_some() {
            let dir =
                cli.cache_dir.clone().unwrap_or_else(|| SweepEngine::DEFAULT_CACHE_DIR.into());
            let cache = ng_dse::EvalCache::new(&dir);
            println!(
                "{}",
                ng_dse::report::shard_stats_report(
                    &cache.store_stats(),
                    ng_dse::obs_counters::store_base_hits().get(),
                    ng_dse::obs_counters::store_tail_hits().get(),
                    ng_dse::obs_counters::store_lock_wait_us().get(),
                    ng_dse::obs_counters::store_tail_heals().get(),
                    ng_dse::obs_counters::cache_rows_skipped().get(),
                    ng_dse::obs_counters::store_degraded_appends().get(),
                    &ng_dse::job::JobManifest::list(std::path::Path::new(&dir)),
                )
            );
            if cli.map_search {
                let store = ng_dse::MapMemoStore::new(&dir);
                println!(
                    "{}",
                    ng_dse::report::mapmemo_stats_report(
                        &store.store_stats(),
                        ng_dse::obs_counters::mapsearch_evals().get(),
                        ng_dse::obs_counters::mapsearch_memo_hits().get(),
                        ng_dse::obs_counters::mapmemo_rows_appended().get(),
                        ng_dse::obs_counters::mapmemo_rows_skipped().get(),
                    )
                );
            }
        }
    }
    if cli.check_map_agreement {
        let a = annotations.as_ref().expect("--check-map-agreement implies --map-search");
        let disagreement = a.max_disagreement();
        if disagreement > ng_dse::AGREEMENT_BAND {
            return Err(check_err(format!(
                "--check-map-agreement: timeloop-vs-ngpc max disagreement {:.2}% exceeds \
                 the {:.0}% cross-validation band",
                disagreement * 100.0,
                ng_dse::AGREEMENT_BAND * 100.0
            )));
        }
    }
    let judge_headline =
        cli.spec.name == "paper" || cli.spec.name == "mac-arrays" || cli.check_headline;
    let headline = if judge_headline { headline_check(&outcome, &cli.constraints) } else { None };
    if cli.check_headline {
        match headline {
            Some(true) => {}
            Some(false) => {
                return Err("--check-headline: the paper's NGPC-64 point dropped off the \
                            Pareto frontier"
                    .to_string()
                    .into())
            }
            None => {
                return Err("--check-headline: the sweep does not contain the paper's NGPC-64 \
                            point"
                    .to_string()
                    .into())
            }
        }
    }

    if let Some(path) = &cli.csv {
        let csv = match &annotations {
            Some(a) => ng_dse::emit::points_to_csv_with_mapping(&outcome.points, a),
            None => ng_dse::emit::points_to_csv(&outcome.points),
        };
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {} points to {path}", outcome.points.len());
    }
    if let Some(path) = &cli.json {
        let frontier = outcome.cross_app_frontier(&cli.constraints);
        let json = match &annotations {
            Some(a) => ng_dse::emit::outcome_to_json_with_mapping(&outcome, &frontier, a),
            None => ng_dse::emit::outcome_to_json(&outcome, &frontier),
        };
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote outcome JSON to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dse: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
