//! Budgeted guided search over the design space.
//!
//! The exhaustive [`crate::sweep::SweepEngine`] is the right tool up to
//! a few thousand points; the exploded 11-arch-axis space behind
//! [`SweepSpec::guided_lanes`] (~260k points) is not a sweep any more,
//! it is a *search problem*: the architect wants the Pareto frontier —
//! and in CI, one specific point on it — without paying for the whole
//! cartesian product.
//!
//! This module implements two budgeted strategies over the arch space
//! (the cartesian product of every [`SweepSpec`] axis *except* `apps`;
//! evaluating one architecture costs one design-point evaluation per
//! app, since the objective is the cross-app average of the paper's
//! Fig. 12):
//!
//! * **Hill climbing with random restarts** (the default): each restart
//!   draws a random weight vector over {log speedup, −log area, −log
//!   power} and a random starting architecture, then walks single-axis
//!   neighbour steps uphill on the scalarised objective until a local
//!   optimum. Different weight draws land on different knees of the
//!   frontier; the paper's NGPC-64 is one of them.
//! * **Evolutionary** (μ+λ-flavoured): a population of axis tuples
//!   evolves by binary tournament (dominance decides, ties go to a
//!   coin flip), uniform per-axis crossover and ±1-step mutation, with
//!   the non-dominated archive injected as elites.
//!
//! Both strategies share the machinery that makes guided search cheap:
//!
//! * a [`StreamingFrontier`] archive maintains the non-dominated set
//!   incrementally (no collect-then-O(n²) pass at the end);
//! * a [`PointEvaluator`] owns ONE [`ngpc::EmulationContext`] and one
//!   preloaded view of the point cache for the whole search — the hot
//!   path of a probe is a hash lookup plus (on a miss) an emulator
//!   call, with no per-point context construction, no per-probe shard
//!   reads and no intermediate vectors;
//! * revisited architectures are free (an in-search memo), cached
//!   points are free (the point store), and only *fresh model
//!   evaluations* consume the budget.
//!
//! Determinism: all randomness comes from one seeded
//! [`ng_neural::math::Pcg32`]; a given `(spec, SearchSpec)` pair
//! explores the same trajectory on every machine.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ng_neural::math::Pcg32;
use ngpc::EmulationContext;

use crate::cache::EvalCache;
use crate::obs_counters;
use crate::pareto::StreamingFrontier;
use crate::spec::{DesignPoint, SpecError, SweepSpec};
use crate::sweep::{ArchPoint, EvaluatedPoint};

/// Which guided strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Scalarised hill climbing with random restarts.
    HillClimb,
    /// Mutation/crossover over axis tuples with a dominance tournament.
    Evolutionary,
}

impl SearchStrategy {
    /// Parse a CLI slug.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "hill" | "hill-climb" | "hillclimb" => Some(SearchStrategy::HillClimb),
            "evolve" | "evo" | "evolutionary" => Some(SearchStrategy::Evolutionary),
            _ => None,
        }
    }

    /// The CLI slug.
    pub fn slug(&self) -> &'static str {
        match self {
            SearchStrategy::HillClimb => "hill",
            SearchStrategy::Evolutionary => "evolve",
        }
    }
}

/// Parameters of a guided search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpec {
    /// Strategy to run.
    pub strategy: SearchStrategy,
    /// Maximum *fresh model evaluations* (design points, not
    /// architectures). Revisits and point-cache hits are free. A budget
    /// at or above the space's point count degenerates to an exhaustive
    /// scan — guided search never does worse than the sweep it
    /// replaces, just never better than its budget.
    pub budget: usize,
    /// RNG seed; equal seeds reproduce the exact trajectory.
    pub seed: u64,
    /// Consecutive fruitless restarts (hill climb) or generations
    /// (evolutionary) — "fruitless" meaning the archive did not change —
    /// after which the search stops early, budget notwithstanding.
    pub convergence_window: usize,
    /// Evolutionary population size.
    pub population: usize,
}

impl SearchSpec {
    /// Default budget fraction: 5% of the space (the ISSUE's win
    /// condition for the exploded preset).
    pub const DEFAULT_BUDGET_FRACTION: f64 = 0.05;

    /// A search spec with the default 5%-of-space budget for `spec`.
    pub fn for_space(spec: &SweepSpec) -> Self {
        SearchSpec {
            budget: ((spec.point_count() as f64 * Self::DEFAULT_BUDGET_FRACTION) as usize).max(1),
            ..SearchSpec::default()
        }
    }
}

impl Default for SearchSpec {
    /// Hill climbing, a 4096-point budget, a fixed seed, and a
    /// 24-restart convergence window.
    fn default() -> Self {
        SearchSpec {
            strategy: SearchStrategy::HillClimb,
            budget: 4096,
            seed: 0x5eed_0001,
            convergence_window: 24,
            population: 24,
        }
    }
}

/// How a search executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStats {
    /// Points in the full cartesian space (what exhaustive would pay).
    pub space_points: usize,
    /// Architectures in the space (points / apps).
    pub space_archs: usize,
    /// Distinct architectures actually visited.
    pub archs_visited: usize,
    /// Fresh model evaluations spent (the budgeted quantity).
    pub evaluations: usize,
    /// Point-cache hits (free under the budget).
    pub cache_hits: usize,
    /// The configured budget.
    pub budget: usize,
    /// Restarts (hill climb) or generations (evolutionary) executed.
    pub rounds: usize,
    /// Whether the search degenerated to an exhaustive scan (budget at
    /// or above the space size).
    pub exhaustive: bool,
    /// Whether a drain (SIGINT/SIGTERM) cut the search short. Fresh
    /// evaluations were flushed to the store, so a re-run with the
    /// same seed replays the trajectory with the prefix served as
    /// cache hits — which is how `dse resume` finishes a search.
    pub interrupted: bool,
    /// Wall-clock time.
    pub wall: Duration,
}

impl SearchStats {
    /// Fraction of the space's evaluations actually spent.
    pub fn budget_fraction_used(&self) -> f64 {
        if self.space_points == 0 {
            0.0
        } else {
            self.evaluations as f64 / self.space_points as f64
        }
    }
}

/// A completed guided search: the frontier of every architecture
/// visited, plus accounting.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The space searched.
    pub spec: SweepSpec,
    /// The search parameters.
    pub search: SearchSpec,
    /// Non-dominated architectures among those visited, ascending area.
    pub frontier: Vec<ArchPoint>,
    /// How the search executed.
    pub stats: SearchStats,
    /// Point-store generation directory, when caching was enabled.
    pub cache_path: Option<PathBuf>,
}

/// Allocation-lean point evaluation for guided search: one
/// [`EmulationContext`] and one in-memory view of the point cache serve
/// every probe; fresh results are buffered and appended to the store in
/// a single batch by [`PointEvaluator::flush`].
pub struct PointEvaluator {
    ctx: EmulationContext,
    cache: Option<EvalCache>,
    view: HashMap<u64, EvaluatedPoint>,
    fresh: Vec<EvaluatedPoint>,
    /// Fresh model evaluations performed.
    pub evaluations: usize,
    /// Probes served from the preloaded cache view.
    pub cache_hits: usize,
}

impl PointEvaluator {
    /// A fresh evaluator; `cache` (if any) is bulk-loaded once, here.
    pub fn new(cache: Option<EvalCache>) -> Self {
        let _span = ng_obs::span("load-view");
        let view = cache.as_ref().map(EvalCache::load_all).unwrap_or_default();
        PointEvaluator {
            ctx: EmulationContext::new(),
            cache,
            view,
            fresh: Vec::new(),
            evaluations: 0,
            cache_hits: 0,
        }
    }

    /// Whether a probe for `point` would be served by the preloaded
    /// cache view (i.e. cost zero fresh evaluations).
    pub fn is_cached(&self, point: &DesignPoint) -> bool {
        match self.view.get(&EvalCache::point_key(point)) {
            Some(stored) => {
                stored.point.arch_key() == point.arch_key() && stored.point.app == point.app
            }
            None => false,
        }
    }

    /// Evaluate one design point: cache-view hit, or emulator call.
    pub fn eval(&mut self, point: &DesignPoint) -> EvaluatedPoint {
        let key = EvalCache::point_key(point);
        if let Some(stored) = self.view.get(&key) {
            // Rule out a 64-bit collision the same way the sweep cache
            // does before trusting the hit.
            if stored.point.arch_key() == point.arch_key() && stored.point.app == point.app {
                self.cache_hits += 1;
                return EvaluatedPoint { point: *point, ..*stored };
            }
        }
        // Same fault-plan hook as the sweep pool: `signal:term` drives
        // the drain path from inside a search too.
        ng_fault::on_eval_tick();
        let r = self.ctx.eval(&point.emulator_input());
        let ep = EvaluatedPoint {
            point: *point,
            speedup: r.speedup,
            area_pct_of_gpu: r.area_pct_of_gpu,
            power_pct_of_gpu: r.power_pct_of_gpu,
            gpu_ms: r.gpu_ms,
            ngpc_frame_ms: r.ngpc_frame_ms,
            amdahl_bound: r.amdahl_bound,
            plateaued: r.plateaued,
        };
        self.evaluations += 1;
        obs_counters::eval_ticks().incr();
        if self.cache.is_some() {
            self.view.insert(key, ep);
            self.fresh.push(ep);
        }
        ep
    }

    /// Append buffered fresh evaluations to the point store (best
    /// effort, like the sweep engine) and return the generation dir.
    pub fn flush(&mut self) -> Option<PathBuf> {
        let cache = self.cache.as_ref()?;
        let _span = ng_obs::span("flush");
        let _ = cache.append(&self.fresh);
        self.fresh.clear();
        Some(cache.store_dir())
    }
}

/// An architecture = one index per arch axis (everything but `apps`),
/// in [`SweepSpec`] field order.
const ARCH_AXES: usize = 11;
type ArchIdx = [u16; ARCH_AXES];

/// The per-axis sizes of a spec's arch space, plus index→point mapping.
struct Space<'a> {
    spec: &'a SweepSpec,
    dims: [usize; ARCH_AXES],
}

impl<'a> Space<'a> {
    fn new(spec: &'a SweepSpec) -> Self {
        let dims = [
            spec.encodings.len(),
            spec.pixels.len(),
            spec.nfp_units.len(),
            spec.clock_ghz.len(),
            spec.grid_sram_kb.len(),
            spec.grid_sram_banks.len(),
            spec.encoding_engines.len(),
            spec.mac_rows.len(),
            spec.mac_cols.len(),
            spec.lanes_per_engine.len(),
            spec.input_fifo_depth.len(),
        ];
        Space { spec, dims }
    }

    fn arch_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// The design point of architecture `idx` under app number
    /// `app_i`.
    fn point(&self, idx: &ArchIdx, app_i: usize) -> DesignPoint {
        let s = self.spec;
        DesignPoint {
            index: 0, // spec-local index is meaningless off-sweep; not part of identity
            app: s.apps[app_i],
            encoding: s.encodings[idx[0] as usize],
            pixels: s.pixels[idx[1] as usize],
            nfp_units: s.nfp_units[idx[2] as usize],
            clock_ghz: s.clock_ghz[idx[3] as usize],
            grid_sram_kb: s.grid_sram_kb[idx[4] as usize],
            grid_sram_banks: s.grid_sram_banks[idx[5] as usize],
            encoding_engines: s.encoding_engines[idx[6] as usize],
            mac_rows: s.mac_rows[idx[7] as usize],
            mac_cols: s.mac_cols[idx[8] as usize],
            lanes_per_engine: s.lanes_per_engine[idx[9] as usize],
            input_fifo_depth: s.input_fifo_depth[idx[10] as usize],
        }
    }

    /// A uniformly random architecture.
    fn random(&self, rng: &mut Pcg32) -> ArchIdx {
        let mut idx = [0u16; ARCH_AXES];
        for (i, &d) in self.dims.iter().enumerate() {
            idx[i] = rng.bounded(d as u32) as u16;
        }
        idx
    }

    /// Decode a flat arch number (row-major over `dims`) — the
    /// exhaustive-degeneration path.
    fn decode(&self, mut flat: usize) -> ArchIdx {
        let mut idx = [0u16; ARCH_AXES];
        for i in (0..ARCH_AXES).rev() {
            idx[i] = (flat % self.dims[i]) as u16;
            flat /= self.dims[i];
        }
        idx
    }
}

/// The cross-app evaluation of one architecture.
#[derive(Debug, Clone, Copy)]
struct ArchEval {
    arch: ArchPoint,
}

/// Shared search state: the evaluator, the visited memo, the streaming
/// archive and the budget.
struct SearchState<'a> {
    space: Space<'a>,
    evaluator: PointEvaluator,
    visited: HashMap<ArchIdx, ArchEval>,
    archive: StreamingFrontier<(ArchIdx, ArchPoint)>,
    archive_generation: u64,
    budget: usize,
    cancel: &'a dyn Fn() -> bool,
}

impl<'a> SearchState<'a> {
    /// Whether a drain has been requested — every strategy loop treats
    /// this exactly like budget exhaustion.
    fn stopped(&self) -> bool {
        (self.cancel)()
    }

    /// Whether the search should keep going: no drain requested and
    /// budget left for at least one more fresh evaluation.
    /// (Architectures served entirely by the point cache are free and
    /// individually exempt from the budget gate — see
    /// [`SearchState::eval_arch`].)
    fn can_afford_arch(&self) -> bool {
        !self.stopped() && self.evaluator.evaluations < self.budget
    }

    /// Fresh evaluations probing `idx` would cost: its points not
    /// already in the cache view.
    fn arch_cost(&self, idx: &ArchIdx) -> usize {
        (0..self.space.spec.apps.len())
            .filter(|&app_i| !self.evaluator.is_cached(&self.space.point(idx, app_i)))
            .count()
    }

    /// Evaluate (or recall) one architecture. Returns `None` only when
    /// the architecture's *fresh* evaluations (cached points are free,
    /// as the budget contract promises) do not fit the budget.
    fn eval_arch(&mut self, idx: &ArchIdx) -> Option<ArchEval> {
        if let Some(hit) = self.visited.get(idx) {
            return Some(*hit);
        }
        // A drain mid-climb looks like budget exhaustion: every caller
        // already unwinds cleanly on `None`.
        if self.stopped() {
            return None;
        }
        if self.evaluator.evaluations + self.arch_cost(idx) > self.budget {
            return None;
        }
        let apps = self.space.spec.apps.len();
        let mut avg_speedup = 0.0;
        let mut first: Option<EvaluatedPoint> = None;
        for app_i in 0..apps {
            let point = self.space.point(idx, app_i);
            let ep = self.evaluator.eval(&point);
            avg_speedup += ep.speedup;
            first.get_or_insert(ep);
        }
        let sample = first.expect("specs validate non-empty app axes");
        let d = &sample.point;
        let arch = ArchPoint {
            encoding: d.encoding,
            pixels: d.pixels,
            nfp_units: d.nfp_units,
            clock_ghz: d.clock_ghz,
            grid_sram_kb: d.grid_sram_kb,
            grid_sram_banks: d.grid_sram_banks,
            encoding_engines: d.encoding_engines,
            mac_rows: d.mac_rows,
            mac_cols: d.mac_cols,
            lanes_per_engine: d.lanes_per_engine,
            input_fifo_depth: d.input_fifo_depth,
            apps: apps as u32,
            avg_speedup: avg_speedup / apps as f64,
            // Area and power are app-independent.
            area_pct_of_gpu: sample.area_pct_of_gpu,
            power_pct_of_gpu: sample.power_pct_of_gpu,
        };
        let eval = ArchEval { arch };
        self.visited.insert(*idx, eval);
        if self.archive.insert(arch.objectives(), (*idx, arch)) {
            self.archive_generation += 1;
        }
        Some(eval)
    }

    /// Pareto local search: walk the archive's neighbourhood until no
    /// archive member has unexplored single-axis neighbours (or the
    /// budget runs out). The true frontier is overwhelmingly connected
    /// under single-axis moves, so once a climb lands on any frontier
    /// segment this walk recovers the rest of the segment — including
    /// knee points no scalarisation happens to select.
    fn explore_archive(&mut self, explored: &mut std::collections::HashSet<ArchIdx>) {
        loop {
            let next =
                self.archive.iter().map(|(_, (idx, _))| *idx).find(|idx| !explored.contains(idx));
            let Some(current) = next else { return };
            explored.insert(current);
            for axis in 0..ARCH_AXES {
                for dir in [-1isize, 1] {
                    let pos = current[axis] as isize + dir;
                    if pos < 0 || pos >= self.space.dims[axis] as isize {
                        continue;
                    }
                    let mut neighbour = current;
                    neighbour[axis] = pos as u16;
                    if self.eval_arch(&neighbour).is_none() {
                        return; // budget exhausted
                    }
                }
            }
        }
    }
}

/// Scalarisation weights over (speedup, area, power), log-domain.
#[derive(Debug, Clone, Copy)]
struct Weights([f64; 3]);

impl Weights {
    /// Draw from the simplex with a floor, so no objective is ever
    /// entirely ignored (a zero-weight area axis would climb to the
    /// biggest cluster every time).
    fn draw(rng: &mut Pcg32) -> Weights {
        const FLOOR: f64 = 0.08;
        let raw = [rng.next_f32() as f64, rng.next_f32() as f64, rng.next_f32() as f64];
        let sum: f64 = raw.iter().sum::<f64>().max(1e-9);
        Weights([FLOOR + raw[0] / sum, FLOOR + raw[1] / sum, FLOOR + raw[2] / sum])
    }

    /// Higher is better: weighted log-speedup minus weighted log-costs.
    fn fitness(&self, a: &ArchPoint) -> f64 {
        self.0[0] * a.avg_speedup.max(1e-12).ln()
            - self.0[1] * a.area_pct_of_gpu.max(1e-12).ln()
            - self.0[2] * a.power_pct_of_gpu.max(1e-12).ln()
    }
}

/// The guided searcher: cache policy mirrors [`crate::SweepEngine`].
#[derive(Debug, Clone)]
pub struct Searcher {
    cache_dir: Option<PathBuf>,
}

impl Default for Searcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Searcher {
    /// A searcher sharing the sweep engine's default point cache.
    pub fn new() -> Self {
        Searcher { cache_dir: Some(PathBuf::from(crate::SweepEngine::DEFAULT_CACHE_DIR)) }
    }

    /// Cache evaluations under `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disable the evaluation cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// Run a guided search over `spec`'s space.
    pub fn run(&self, spec: &SweepSpec, search: &SearchSpec) -> Result<SearchOutcome, SpecError> {
        self.run_inner(spec, search, &|| false)
    }

    /// [`Searcher::run`] with a drain predicate (the CLI passes
    /// [`crate::cancel::cancelled`]): on cancellation the strategy
    /// loops unwind like budget exhaustion, fresh evaluations are
    /// flushed, and the outcome is marked `interrupted`.
    pub fn run_draining(
        &self,
        spec: &SweepSpec,
        search: &SearchSpec,
        cancel: impl Fn() -> bool,
    ) -> Result<SearchOutcome, SpecError> {
        self.run_inner(spec, search, &cancel)
    }

    fn run_inner(
        &self,
        spec: &SweepSpec,
        search: &SearchSpec,
        cancel: &dyn Fn() -> bool,
    ) -> Result<SearchOutcome, SpecError> {
        spec.validate()?;
        if search.budget == 0 {
            return Err(SpecError::Invalid("search budget must be nonzero".to_string()));
        }
        let _span = ng_obs::span("search");
        let started = Instant::now();
        let cache = self.cache_dir.as_ref().map(|dir| EvalCache::new(dir.clone()));
        let mut state = SearchState {
            space: Space::new(spec),
            evaluator: PointEvaluator::new(cache),
            visited: HashMap::new(),
            archive: StreamingFrontier::new(),
            archive_generation: 0,
            budget: search.budget,
            cancel,
        };
        let space_points = spec.point_count();
        let space_archs = state.space.arch_count();

        let mut rng = Pcg32::with_stream(search.seed, 0xd5e);
        let exhaustive = search.budget >= space_points;
        let rounds = {
            let _span = ng_obs::span("drive");
            if exhaustive {
                // The budget covers the whole space: guided search must
                // degenerate to the exhaustive frontier, so scan it.
                for flat in 0..space_archs {
                    let idx = state.space.decode(flat);
                    if state.eval_arch(&idx).is_none() {
                        debug_assert!(state.stopped(), "budget covers the space");
                        break;
                    }
                }
                1
            } else {
                match search.strategy {
                    SearchStrategy::HillClimb => hill_climb(&mut state, search, &mut rng),
                    SearchStrategy::Evolutionary => evolve(&mut state, search, &mut rng),
                }
            }
        };
        let interrupted = state.stopped();

        let cache_path = state.evaluator.flush();
        let mut frontier: Vec<ArchPoint> =
            state.archive.into_payloads().into_iter().map(|(_, a)| a).collect();
        frontier.sort_by(|a, b| a.area_pct_of_gpu.total_cmp(&b.area_pct_of_gpu));
        Ok(SearchOutcome {
            spec: spec.clone(),
            search: *search,
            frontier,
            stats: SearchStats {
                space_points,
                space_archs,
                archs_visited: state.visited.len(),
                evaluations: state.evaluator.evaluations,
                cache_hits: state.evaluator.cache_hits,
                budget: search.budget,
                rounds,
                exhaustive,
                interrupted,
                wall: started.elapsed(),
            },
            cache_path,
        })
    }
}

/// Hill climbing with random restarts, interleaved with Pareto local
/// search over the archive; returns restarts executed.
///
/// Each restart draws fresh scalarisation weights and climbs
/// first-improvement (neighbours probed in a seeded random order, so a
/// step costs far less than a full 22-neighbour scan) from a random
/// start to a local optimum. The optimum joins the archive; the
/// archive's own neighbourhood is then walked exhaustively
/// ([`SearchState::explore_archive`]), which crawls along the connected
/// frontier segment the climb landed on and picks up the knee points no
/// weight draw happens to select.
fn hill_climb(state: &mut SearchState<'_>, search: &SearchSpec, rng: &mut Pcg32) -> usize {
    let mut restarts = 0;
    let mut fruitless = 0;
    let mut explored = std::collections::HashSet::new();
    let (accepted, rejected) =
        (obs_counters::search_hill_accepted(), obs_counters::search_hill_rejected());
    while state.can_afford_arch() && fruitless < search.convergence_window {
        let before = state.archive_generation;
        let weights = Weights::draw(rng);
        let mut current = state.space.random(rng);
        let Some(mut current_eval) = state.eval_arch(&current) else { break };
        // Climb: take the first strictly-improving single-axis move,
        // probing the 2·AXES neighbours in a random rotation.
        'climb: loop {
            let offset = rng.bounded(2 * ARCH_AXES as u32) as usize;
            let current_fit = weights.fitness(&current_eval.arch);
            for probe in 0..2 * ARCH_AXES {
                let which = (probe + offset) % (2 * ARCH_AXES);
                let (axis, dir) = (which / 2, if which.is_multiple_of(2) { -1isize } else { 1 });
                let pos = current[axis] as isize + dir;
                if pos < 0 || pos >= state.space.dims[axis] as isize {
                    continue;
                }
                let mut neighbour = current;
                neighbour[axis] = pos as u16;
                let Some(eval) = state.eval_arch(&neighbour) else { break 'climb };
                if weights.fitness(&eval.arch) > current_fit {
                    accepted.incr();
                    current = neighbour;
                    current_eval = eval;
                    continue 'climb;
                }
                rejected.incr();
            }
            break; // no improving neighbour: a local optimum
        }
        // Flesh out the frontier segment around everything archived.
        state.explore_archive(&mut explored);
        restarts += 1;
        if state.archive_generation == before {
            fruitless += 1;
        } else {
            fruitless = 0;
        }
    }
    restarts
}

/// μ+λ evolutionary search; returns generations executed.
fn evolve(state: &mut SearchState<'_>, search: &SearchSpec, rng: &mut Pcg32) -> usize {
    let pop_size = search.population.max(4);
    let mut population: Vec<ArchIdx> = Vec::with_capacity(pop_size);
    while population.len() < pop_size {
        let idx = state.space.random(rng);
        if state.eval_arch(&idx).is_none() {
            return 0;
        }
        population.push(idx);
    }

    let dominates = |state: &SearchState<'_>, a: &ArchIdx, b: &ArchIdx| -> bool {
        let (ea, eb) = (&state.visited[a].arch, &state.visited[b].arch);
        ea.objectives().dominates(&eb.objectives())
    };

    let mut generations = 0;
    let mut fruitless = 0;
    while state.can_afford_arch() && fruitless < search.convergence_window {
        let before = state.archive_generation;
        let mut next: Vec<ArchIdx> = Vec::with_capacity(pop_size);
        // Elites: archive members re-enter the pool (up to half of it).
        for (_, (idx, _)) in state.archive.iter().take(pop_size / 2) {
            next.push(*idx);
        }
        while next.len() < pop_size {
            // Binary tournaments pick two parents...
            let mut parent = [population[0]; 2];
            for p in &mut parent {
                let a = population[rng.bounded(population.len() as u32) as usize];
                let b = population[rng.bounded(population.len() as u32) as usize];
                *p = if dominates(state, &a, &b) {
                    a
                } else if dominates(state, &b, &a) {
                    b
                } else if rng.next_u32() & 1 == 0 {
                    a
                } else {
                    b
                };
            }
            // ... uniform crossover mixes them per axis ...
            let mut child = parent[0];
            for axis in 0..ARCH_AXES {
                if rng.next_u32() & 1 == 1 {
                    child[axis] = parent[1][axis];
                }
            }
            // ... and mutation nudges ~2 axes by one step.
            for (axis, gene) in child.iter_mut().enumerate() {
                if rng.bounded(ARCH_AXES as u32 / 2) == 0 {
                    let d = state.space.dims[axis] as isize;
                    let step = if rng.next_u32() & 1 == 0 { -1isize } else { 1 };
                    *gene = (*gene as isize + step).clamp(0, d - 1) as u16;
                }
            }
            // An offspring "proposal" is accepted when it moved the
            // non-dominated archive (eval_arch bumps the generation on
            // insert); dominated or revisited children are rejections.
            let archive_before = state.archive_generation;
            if state.eval_arch(&child).is_none() {
                break; // budget exhausted mid-generation
            }
            if state.archive_generation > archive_before {
                obs_counters::search_evo_accepted().incr();
            } else {
                obs_counters::search_evo_rejected().incr();
            }
            next.push(child);
        }
        if next.is_empty() {
            break;
        }
        population = next;
        generations += 1;
        if state.archive_generation == before {
            fruitless += 1;
        } else {
            fruitless = 0;
        }
    }
    generations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::Constraints;

    fn small_spec() -> SweepSpec {
        // 2 x 3 x 2 x 2 = 24 archs, 96 points: big enough to search,
        // small enough to exhaust in tests.
        let mut spec = SweepSpec::quick();
        spec.nfp_units = vec![8, 16, 32];
        spec.grid_sram_kb = vec![512, 1024];
        spec.lanes_per_engine = vec![1, 2];
        spec.encodings = vec![
            ng_neural::apps::EncodingKind::MultiResHashGrid,
            ng_neural::apps::EncodingKind::LowResDenseGrid,
        ];
        spec
    }

    fn canon(frontier: &[ArchPoint]) -> Vec<(u64, u64, u64)> {
        let mut keys: Vec<(u64, u64, u64)> = frontier
            .iter()
            .map(|a| {
                (a.avg_speedup.to_bits(), a.area_pct_of_gpu.to_bits(), a.power_pct_of_gpu.to_bits())
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn saturated_budget_degenerates_to_the_exhaustive_frontier() {
        let spec = small_spec();
        let exhaustive = crate::SweepEngine::new().without_cache().run(&spec).unwrap();
        let expected = exhaustive.cross_app_frontier(&Constraints::NONE);
        for strategy in [SearchStrategy::HillClimb, SearchStrategy::Evolutionary] {
            let search =
                SearchSpec { strategy, budget: spec.point_count(), ..SearchSpec::default() };
            let outcome = Searcher::new().without_cache().run(&spec, &search).unwrap();
            assert!(outcome.stats.exhaustive);
            assert_eq!(outcome.stats.archs_visited, outcome.stats.space_archs);
            assert_eq!(canon(&outcome.frontier), canon(&expected), "{strategy:?}");
        }
    }

    #[test]
    fn search_is_deterministic_per_seed_and_respects_budget() {
        let spec = small_spec();
        for strategy in [SearchStrategy::HillClimb, SearchStrategy::Evolutionary] {
            let search = SearchSpec { strategy, budget: 40, ..SearchSpec::default() };
            let a = Searcher::new().without_cache().run(&spec, &search).unwrap();
            let b = Searcher::new().without_cache().run(&spec, &search).unwrap();
            assert_eq!(canon(&a.frontier), canon(&b.frontier), "{strategy:?}");
            assert_eq!(a.stats.evaluations, b.stats.evaluations);
            assert!(a.stats.evaluations <= 40, "{strategy:?}: {}", a.stats.evaluations);
            assert!(!a.stats.exhaustive);
            // Evaluations come in whole architectures.
            assert_eq!(a.stats.evaluations % spec.apps.len(), 0);
        }
    }

    #[test]
    fn searched_frontier_members_are_mutually_non_dominated() {
        let spec = small_spec();
        let search = SearchSpec { budget: 60, ..SearchSpec::default() };
        let outcome = Searcher::new().without_cache().run(&spec, &search).unwrap();
        assert!(!outcome.frontier.is_empty());
        for a in &outcome.frontier {
            for b in &outcome.frontier {
                assert!(!a.objectives().dominates(&b.objectives()) || a == b);
            }
        }
        // Sorted by ascending area, like the sweep frontier.
        for w in outcome.frontier.windows(2) {
            assert!(w[0].area_pct_of_gpu <= w[1].area_pct_of_gpu);
        }
    }

    #[test]
    fn zero_budget_is_rejected() {
        let spec = small_spec();
        let search = SearchSpec { budget: 0, ..SearchSpec::default() };
        assert!(Searcher::new().without_cache().run(&spec, &search).is_err());
    }

    #[test]
    fn point_cache_makes_revisits_free_across_runs() {
        let dir = std::env::temp_dir().join(format!("ng-dse-search-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec();
        let search = SearchSpec { budget: spec.point_count(), ..SearchSpec::default() };
        let cold = Searcher::new().with_cache_dir(&dir).run(&spec, &search).unwrap();
        assert!(cold.stats.evaluations > 0);
        assert!(cold.cache_path.is_some());
        let warm = Searcher::new().with_cache_dir(&dir).run(&spec, &search).unwrap();
        assert_eq!(warm.stats.evaluations, 0, "every probe served from the store");
        assert_eq!(warm.stats.cache_hits, cold.stats.evaluations + cold.stats.cache_hits);
        assert_eq!(canon(&warm.frontier), canon(&cold.frontier));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
