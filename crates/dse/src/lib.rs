//! # ng-dse — parallel design-space exploration for the NGPC
//!
//! The paper's headline results (Figs. 12–15) are single points read off
//! a much larger configuration space: NFP count, clock, grid-SRAM
//! sizing and banking, input encoding and application mix. This crate
//! turns that space into a first-class workload:
//!
//! * [`spec`] — a declarative [`SweepSpec`]: cartesian axes over every
//!   swept parameter, loadable from a TOML subset or built from presets
//!   ([`SweepSpec::paper`], [`SweepSpec::quick`], ...).
//! * [`sweep`] — the [`SweepEngine`]: expands the spec into
//!   [`DesignPoint`]s and evaluates them through `ngpc`'s emulator on a
//!   work-stealing thread pool ([`pool`]), with results in deterministic
//!   spec order regardless of scheduling.
//! * [`pareto`] — n-dimensional non-dominated frontier extraction over
//!   {speedup, area % of GPU, power % of GPU}, with budget
//!   [`Constraints`] and per-app / cross-app-average objectives.
//! * [`cache`] + [`emit`] — a sharded *point-level* evaluation cache
//!   (re-runs of an unchanged spec are free, and overlapping or grown
//!   specs evaluate only their delta) and CSV/JSON emitters. Appends
//!   take a per-shard advisory file lock, so any number of threads or
//!   processes can write one store concurrently.
//! * [`compact`] — the binary columnar generation layer behind
//!   `dse compact`: sealed CSV shards fold into a checksummed,
//!   key-sorted file the cache loads with one `read` and zero per-row
//!   parsing, while readers overlay the live CSV tail on top.
//! * [`distrib`] — the multi-process sharded backend behind
//!   `dse --workers N`: deterministic canonical-order slices, worker
//!   processes coordinating purely through the point store, and a
//!   coordinator merge that recovers crashed workers' slices.
//! * [`mapsearch`] + [`mapmemo`] — the joint mapping search behind
//!   `dse --map-search`: per-layer `ng-timeloop` mapping searches fed
//!   back through the timing stack, memoized in a mapping-memo store
//!   that mirrors the point store's locked-append + compacted-base
//!   discipline (and doubles as the Fig. 13 cross-validation seam).
//! * [`report`] — the compact terminal report behind the `dse` binary.
//! * [`obs_counters`] — the crate's hoisted [`ng_obs`] counter handles.
//!   Every stage is instrumented with `ng-obs` spans and counters:
//!   `dse --trace PATH` (or `NG_DSE_TRACE`) records a JSONL run ledger,
//!   `dse trace PATH` summarizes one, and `dse --metrics` prints the
//!   in-process profile and counters after any run.
//!
//! ## Quickstart
//!
//! ```
//! use ng_dse::{Constraints, SweepEngine, SweepSpec};
//!
//! let outcome = SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap();
//! // Architectures within an area budget of 10% of the GPU die, best
//! // cross-app speedup first.
//! let budget = Constraints { max_area_pct: Some(10.0), ..Constraints::default() };
//! let frontier = outcome.cross_app_frontier(&budget);
//! assert!(!frontier.is_empty());
//! assert!(frontier.iter().all(|a| a.area_pct_of_gpu <= 10.0));
//! ```

pub mod cache;
pub mod cancel;
pub mod chaos;
pub mod compact;
pub mod distrib;
pub mod emit;
pub mod fsck;
pub mod job;
pub mod mapmemo;
pub mod mapsearch;
pub mod obs_counters;
pub mod pareto;
pub mod pool;
pub mod report;
pub mod search;
pub mod spec;
pub mod sweep;

pub use cache::EvalCache;
pub use compact::{compact, CompactBase, CompactReport};
pub use distrib::{
    Coordinator, DistribError, DistribOutcome, DistribRun, DrainedDistrib, WorkerReport,
    WorkerSummary,
};
pub use mapmemo::{MapMemoStore, MapRecord, MAP_SEARCH_BATCH};
pub use mapsearch::{annotate, MapMetrics, MapSearchOutcome, AGREEMENT_BAND};
pub use pareto::{pareto_indices, Constraints, Objectives, StreamingFrontier};
pub use search::{SearchOutcome, SearchSpec, SearchStats, SearchStrategy, Searcher};
pub use spec::{DesignPoint, SpecError, SweepSpec};
pub use sweep::{
    ArchPoint, DrainedSweep, EvaluatedPoint, SweepEngine, SweepOutcome, SweepRun, SweepStats,
};

/// Version tag of the underlying evaluation models, mixed into every
/// cache key. **Bump this whenever `ngpc`'s emulator, the GPU model or
/// the area/power substrate changes results** so cache generations stay
/// humanly tellable apart on disk — though since
/// [`model_fingerprint`] is also folded into every key, a forgotten
/// bump no longer serves stale results.
pub const MODEL_VERSION: &str = "ngpc-models-v4";

/// Fingerprint of the evaluation models' actual *outputs*: a probe
/// sweep evaluated single-threaded and hashed at 9 significant digits
/// (coarse enough to absorb cross-platform libm jitter, fine enough
/// that any deliberate model change shifts it). The probe is the
/// quick preset *widened along the MAC-array, engine-count, query-lane
/// and input-FIFO axes* (2 engine counts x 2 row counts x 2 column
/// counts x 2 lane counts x 2 FIFO depths), so drift in the
/// compositional timing model — which is invisible at the paper's NFP
/// by construction — still invalidates cached sweep results, including
/// drift that only shows on the lane/FIFO axes the guided searcher
/// explores.
/// Folded into every point-cache key next to [`MODEL_VERSION`]; the
/// pinned value in `tests/model_fingerprint.rs` turns silent drift into
/// a test failure with bump instructions. Computed once per process:
/// 128 evaluations — microseconds once the GPU model is calibrated.
/// Note the coupling: because the probe runs the real emulator, any
/// cache-enabled run pays the GPU-model calibration (~1 s) when
/// `ng-gpu`'s persistent calibration store is cold or disabled
/// (`NGPC_CALIB_CACHE=off`); with the store warm — the default after
/// any first run on a machine — the probe is effectively free.
pub fn model_fingerprint() -> u64 {
    static FINGERPRINT: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *FINGERPRINT.get_or_init(|| {
        // The probe is bookkeeping, not user work: it must not consume
        // a fault plan's tick numbering or budgets (a
        // `signal:term@point=5` should interrupt the user's sweep at
        // its 5th point, not die inside this probe before the sweep
        // starts).
        let _probe_is_not_user_work = ng_fault::pause_injection();
        let mut probe = SweepSpec::quick();
        probe.encoding_engines = vec![8, 16];
        probe.mac_rows = vec![32, 64];
        probe.mac_cols = vec![32, 64];
        probe.lanes_per_engine = vec![1, 2];
        probe.input_fifo_depth = vec![4, 64];
        let outcome = SweepEngine::new()
            .without_cache()
            .with_threads(1)
            .run(&probe)
            .expect("the probe spec always validates");
        let mut text = String::new();
        for p in &outcome.points {
            text.push_str(&format!(
                "{:.9e},{:.9e},{:.9e};",
                p.speedup, p.area_pct_of_gpu, p.power_pct_of_gpu
            ));
        }
        ng_neural::math::fnv1a64(&text)
    })
}
