//! # ng-dse — parallel design-space exploration for the NGPC
//!
//! The paper's headline results (Figs. 12–15) are single points read off
//! a much larger configuration space: NFP count, clock, grid-SRAM
//! sizing and banking, input encoding and application mix. This crate
//! turns that space into a first-class workload:
//!
//! * [`spec`] — a declarative [`SweepSpec`]: cartesian axes over every
//!   swept parameter, loadable from a TOML subset or built from presets
//!   ([`SweepSpec::paper`], [`SweepSpec::quick`], ...).
//! * [`sweep`] — the [`SweepEngine`]: expands the spec into
//!   [`DesignPoint`]s and evaluates them through `ngpc`'s emulator on a
//!   work-stealing thread pool ([`pool`]), with results in deterministic
//!   spec order regardless of scheduling.
//! * [`pareto`] — n-dimensional non-dominated frontier extraction over
//!   {speedup, area % of GPU, power % of GPU}, with budget
//!   [`Constraints`] and per-app / cross-app-average objectives.
//! * [`cache`] + [`emit`] — a content-hashed evaluation cache (re-runs
//!   of an unchanged spec are free) and CSV/JSON emitters.
//! * [`report`] — the compact terminal report behind the `dse` binary.
//!
//! ## Quickstart
//!
//! ```
//! use ng_dse::{Constraints, SweepEngine, SweepSpec};
//!
//! let outcome = SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap();
//! // Architectures within an area budget of 10% of the GPU die, best
//! // cross-app speedup first.
//! let budget = Constraints { max_area_pct: Some(10.0), ..Constraints::default() };
//! let frontier = outcome.cross_app_frontier(&budget);
//! assert!(!frontier.is_empty());
//! assert!(frontier.iter().all(|a| a.area_pct_of_gpu <= 10.0));
//! ```

pub mod cache;
pub mod emit;
pub mod pareto;
pub mod pool;
pub mod report;
pub mod spec;
pub mod sweep;

pub use cache::EvalCache;
pub use pareto::{pareto_indices, Constraints, Objectives};
pub use spec::{DesignPoint, SpecError, SweepSpec};
pub use sweep::{ArchPoint, EvaluatedPoint, SweepEngine, SweepOutcome, SweepStats};

/// Version tag of the underlying evaluation models, mixed into every
/// cache key. **Bump this whenever `ngpc`'s emulator, the GPU model or
/// the area/power substrate changes results** — it is the only thing
/// invalidating stale caches (nothing derives it from the model code;
/// `ngpc::emulator` points back here from its calibrated constants).
pub const MODEL_VERSION: &str = "ngpc-models-v2";
