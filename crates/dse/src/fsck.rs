//! `dse fsck` — the point-store doctor.
//!
//! The store's readers are deliberately lenient: [`crate::cache`]
//! skips torn rows, interior headers, foreign-generation rows and
//! duplicate keys so that a crashed writer costs misses, never errors.
//! Leniency hides damage, though — a store that silently re-evaluates
//! 10% of every sweep *works*, it is just quietly wasting the cluster.
//! This module is the complementary strict pass: audit every shard of
//! the current generation (and optionally a JSONL run ledger), name
//! each defect precisely, and — under `--repair` — rewrite the store
//! into the canonical form the appenders would have produced without
//! the crashes.
//!
//! ## Defect classes
//!
//! | finding            | cause                                     | repair |
//! |--------------------|-------------------------------------------|--------|
//! | torn row           | writer died mid-append                    | dropped (point re-evaluates) |
//! | truncated tail     | final line missing its `\n`               | tail row dropped or healed by rewrite |
//! | interior header    | pre-locking writer race, file concatenation | dropped |
//! | duplicate key      | retried append, coordinator + worker both delivering | later copy kept (matches reader semantics) |
//! | foreign row        | rows copied across generations, truncation splice (axes no longer hash to the stated key) | dropped |
//! | misplaced row      | valid row in the wrong shard file (no reader ever finds it) | moved to its home shard |
//! | unreadable shard   | non-UTF-8 bytes, permission damage        | quarantined to `*.quarantine` |
//! | corrupt generation | binary generation fails checksum/sort/index verification | quarantined, then rebuilt from the surviving layers |
//! | orphaned generation | superseded generation or compactor tmp a crash left behind | deleted (the live base supersedes it) |
//!
//! Repair is conservative by construction: it only ever *drops rows a
//! reader already refuses to serve* and *moves or deduplicates rows a
//! reader would serve identically*, so a repaired store returns
//! exactly the same hits as the damaged one — plus the misplaced rows
//! nobody could reach. Quarantine (renaming an unreadable shard to
//! `shard-N.csv.quarantine`) trades those rows for a working shard
//! file; the points re-evaluate on the next sweep.
//!
//! Run the doctor while no sweep is writing: repair rewrites shards
//! via tmp+rename under the shard lock, which is safe against the
//! appenders, but an audit racing a live writer will report the
//! writer's in-flight tail as torn.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::cache::{EvalCache, SHARD_COUNT};
use crate::compact;
use crate::emit::{point_from_row, point_to_row};
use crate::mapmemo::{MapMemoStore, MapRecord};
use crate::sweep::EvaluatedPoint;
use crate::{model_fingerprint, MODEL_VERSION};

/// What the audit found in one binary generation file (or compactor
/// tmp leftover).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenerationFinding {
    /// The file audited.
    pub file: PathBuf,
    /// Its generation sequence number (0 for tmp leftovers).
    pub seq: u64,
    /// Rows that decode cleanly.
    pub rows: usize,
    /// File size on disk.
    pub bytes: u64,
    /// Verification failures: checksum mismatches, key-sort breaks,
    /// sparse-index inconsistency, rows whose axes no longer hash to
    /// their stored key. Non-empty means readers ignore this file.
    pub defects: Vec<String>,
    /// Dead weight: a generation superseded by the live base, or a
    /// crashed compactor's tmp file. Never read; `--repair` deletes it.
    pub orphaned: bool,
}

impl GenerationFinding {
    /// Whether this file needs no attention.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty() && !self.orphaned
    }
}

impl fmt::Display for GenerationFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.file.file_name().and_then(|n| n.to_str()).unwrap_or("generation");
        if self.orphaned {
            return write!(
                f,
                "{name}: ORPHANED ({:.1} KiB dead weight)",
                self.bytes as f64 / 1024.0
            );
        }
        if !self.defects.is_empty() {
            return write!(
                f,
                "{name}: CORRUPT — {}{}",
                self.defects[0],
                if self.defects.len() > 1 {
                    format!(" (+{} more defect(s))", self.defects.len() - 1)
                } else {
                    String::new()
                }
            );
        }
        write!(f, "{name}: {} row(s) ok, {:.1} KiB", self.rows, self.bytes as f64 / 1024.0)
    }
}

/// What the audit found in one shard file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardFinding {
    /// The shard index (file `shard-{shard:x}.csv`).
    pub shard: usize,
    /// Rows a reader can serve (after deduplication).
    pub rows_ok: usize,
    /// Unparseable data lines (torn appends, splices, garbage).
    pub torn_rows: usize,
    /// Header/comment lines anywhere but line one.
    pub interior_headers: usize,
    /// Extra copies of an already-present key.
    pub duplicate_keys: usize,
    /// Rows whose axes no longer hash to their stated key — stale
    /// generations or truncation splices.
    pub foreign_rows: usize,
    /// Valid rows sitting in a shard file their key does not map to
    /// (unreachable: lookups only read the key's home shard).
    pub misplaced_rows: usize,
    /// File does not end in a newline (a final torn append).
    pub truncated_tail: bool,
    /// File exists but cannot be read as text; repair renames it to
    /// `*.quarantine`.
    pub unreadable: bool,
}

impl ShardFinding {
    /// Whether this shard needs no attention.
    pub fn is_clean(&self) -> bool {
        self.torn_rows == 0
            && self.interior_headers == 0
            && self.duplicate_keys == 0
            && self.foreign_rows == 0
            && self.misplaced_rows == 0
            && !self.truncated_tail
            && !self.unreadable
    }
}

impl fmt::Display for ShardFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unreadable {
            return write!(f, "shard {:x}: UNREADABLE (quarantine candidate)", self.shard);
        }
        write!(f, "shard {:x}: {} row(s) ok", self.shard, self.rows_ok)?;
        let mut issue = |cond: bool, text: String| -> fmt::Result {
            if cond {
                write!(f, ", {text}")?;
            }
            Ok(())
        };
        issue(self.torn_rows > 0, format!("{} torn", self.torn_rows))?;
        issue(self.interior_headers > 0, format!("{} interior header(s)", self.interior_headers))?;
        issue(self.duplicate_keys > 0, format!("{} duplicate key(s)", self.duplicate_keys))?;
        issue(self.foreign_rows > 0, format!("{} foreign row(s)", self.foreign_rows))?;
        issue(self.misplaced_rows > 0, format!("{} misplaced row(s)", self.misplaced_rows))?;
        issue(self.truncated_tail, "truncated tail".to_string())?;
        Ok(())
    }
}

/// The full audit of one store generation.
#[derive(Debug)]
pub struct FsckReport {
    /// The generation directory audited.
    pub store_dir: PathBuf,
    /// One finding per present shard file (absent shards are fine —
    /// the store materialises shards lazily).
    pub shards: Vec<ShardFinding>,
    /// One finding per binary generation file and compactor tmp
    /// leftover, newest first.
    pub generations: Vec<GenerationFinding>,
    /// One finding per present mapping-memo shard file (the
    /// `--map-search` memo lives inside this generation and shares the
    /// store's failure model, so the doctor audits it too).
    pub memo_shards: Vec<ShardFinding>,
    /// One finding per mapping-memo base file, newest first.
    pub memo_bases: Vec<GenerationFinding>,
    /// Shards renamed to `*.quarantine` (repair mode only).
    pub quarantined: Vec<usize>,
    /// Memo shards renamed to `*.quarantine` (repair mode only).
    pub memo_quarantined: Vec<usize>,
    /// Whether repair re-ran the compactor to rebuild a quarantined
    /// corrupt generation from the surviving layers.
    pub recompacted: bool,
    /// Whether repair ran.
    pub repaired: bool,
}

impl FsckReport {
    /// Whether every audited shard and generation is clean.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(ShardFinding::is_clean)
            && self.generations.iter().all(GenerationFinding::is_clean)
            && self.memo_shards.iter().all(ShardFinding::is_clean)
            && self.memo_bases.iter().all(GenerationFinding::is_clean)
    }

    /// Total rows a reader can serve across the store.
    pub fn rows_ok(&self) -> usize {
        self.shards.iter().map(|s| s.rows_ok).sum()
    }

    /// Total rows the compact base can serve (the newest clean
    /// generation, if any).
    pub fn base_rows(&self) -> usize {
        self.generations.iter().find(|g| g.is_clean()).map_or(0, |g| g.rows)
    }

    /// One summary line for reports and logs.
    pub fn summary(&self) -> String {
        let dirty = self.shards.iter().filter(|s| !s.is_clean()).count()
            + self.generations.iter().filter(|g| !g.is_clean()).count()
            + self.memo_shards.iter().filter(|s| !s.is_clean()).count()
            + self.memo_bases.iter().filter(|g| !g.is_clean()).count();
        let dropped: usize = self
            .shards
            .iter()
            .chain(&self.memo_shards)
            .map(|s| s.torn_rows + s.duplicate_keys + s.foreign_rows + s.interior_headers)
            .sum();
        let memo = if self.memo_shards.is_empty() && self.memo_bases.is_empty() {
            String::new()
        } else {
            format!(
                ", mapmemo {} row(s) in {} file(s)",
                self.memo_shards.iter().map(|s| s.rows_ok).sum::<usize>(),
                self.memo_shards.len() + self.memo_bases.len(),
            )
        };
        format!(
            "fsck {}: {} shard file(s), {} generation file(s), {} tail + {} base row(s) \
             serveable{memo}; {dirty} dirty file(s), {dropped} defective line(s){}{}{}",
            self.store_dir.display(),
            self.shards.len(),
            self.generations.len(),
            self.rows_ok(),
            self.base_rows(),
            if self.quarantined.is_empty() && self.memo_quarantined.is_empty() {
                String::new()
            } else {
                format!(", {} quarantined", self.quarantined.len() + self.memo_quarantined.len())
            },
            if self.recompacted { ", recompacted" } else { "" },
            if self.repaired {
                " — repaired"
            } else if dirty > 0 {
                " — run `dse fsck --repair`"
            } else {
                ""
            },
        )
    }
}

/// One shard file's parse, strict form: every line classified.
struct ParsedShard {
    finding: ShardFinding,
    /// Serveable rows in append order, deduplicated later-wins —
    /// exactly the set (and precedence) [`EvalCache`] readers use.
    /// Misplaced rows carry their *home* shard so repair can move them.
    rows: Vec<(u64, usize, EvaluatedPoint)>,
}

fn parse_shard(path: &Path, shard: usize) -> io::Result<Option<ParsedShard>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // Non-UTF-8 bytes: no reader can use any of it.
            return Ok(Some(ParsedShard {
                finding: ShardFinding { shard, unreadable: true, ..ShardFinding::default() },
                rows: Vec::new(),
            }));
        }
        Err(e) => return Err(e),
    };
    let mut finding = ShardFinding { shard, ..ShardFinding::default() };
    finding.truncated_tail = !text.is_empty() && !text.ends_with('\n');
    let mut rows: Vec<(u64, usize, EvaluatedPoint)> = Vec::new();
    let mut index_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') || line.starts_with("key,") {
            if lineno != 0 {
                finding.interior_headers += 1;
            }
            continue;
        }
        let parsed = line.split_once(',').and_then(|(key_hex, row)| {
            Some((u64::from_str_radix(key_hex, 16).ok()?, point_from_row(row).ok()?))
        });
        let Some((stated, point)) = parsed else {
            finding.torn_rows += 1;
            continue;
        };
        if EvalCache::point_key(&point.point) != stated {
            finding.foreign_rows += 1;
            continue;
        }
        let home = EvalCache::shard_of(stated);
        if home != shard {
            finding.misplaced_rows += 1;
        }
        match index_of.get(&stated) {
            Some(&i) => {
                finding.duplicate_keys += 1;
                rows[i] = (stated, home, point); // later wins, reader semantics
            }
            None => {
                index_of.insert(stated, rows.len());
                rows.push((stated, home, point));
            }
        }
    }
    finding.rows_ok = rows.len();
    Ok(Some(ParsedShard { finding, rows }))
}

/// Strictly audit every binary generation file and compactor tmp in
/// the store, newest first. The newest cleanly-verifying file is the
/// live base; older generations (and all tmps) are dead weight a crash
/// or interrupted cleanup left behind, and anything failing
/// verification is named defect by defect.
fn audit_generations(store_dir: &Path) -> Vec<GenerationFinding> {
    let mut out = Vec::new();
    let mut live_seen = false;
    for (seq, path) in compact::generation_files(store_dir) {
        let (rows, bytes, defects) = compact::verify_generation(&path);
        let clean = defects.is_empty();
        out.push(GenerationFinding { file: path, seq, rows, bytes, defects, orphaned: live_seen });
        if clean && !live_seen {
            live_seen = true;
        }
    }
    for path in compact::orphaned_tmp_files(store_dir) {
        let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        out.push(GenerationFinding { file: path, bytes, orphaned: true, ..Default::default() });
    }
    out
}

/// One mapping-memo shard's strict parse — the memo analogue of
/// [`ParsedShard`], classifying every line against [`MapRecord`]'s
/// format and key discipline.
struct ParsedMemoShard {
    finding: ShardFinding,
    /// Serveable rows in append order, deduplicated later-wins, each
    /// carrying its *home* shard so repair can move misplaced rows.
    rows: Vec<(u64, usize, MapRecord)>,
}

fn parse_memo_shard(path: &Path, shard: usize) -> io::Result<Option<ParsedMemoShard>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Ok(Some(ParsedMemoShard {
                finding: ShardFinding { shard, unreadable: true, ..ShardFinding::default() },
                rows: Vec::new(),
            }));
        }
        Err(e) => return Err(e),
    };
    let mut finding = ShardFinding { shard, ..ShardFinding::default() };
    finding.truncated_tail = !text.is_empty() && !text.ends_with('\n');
    let mut rows: Vec<(u64, usize, MapRecord)> = Vec::new();
    let mut index_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') || line.starts_with("key,") {
            if lineno != 0 {
                finding.interior_headers += 1;
            }
            continue;
        }
        let parsed = line.split_once(',').and_then(|(key_hex, row)| {
            Some((u64::from_str_radix(key_hex, 16).ok()?, MapRecord::from_row(row).ok()?))
        });
        let Some((stated, record)) = parsed else {
            finding.torn_rows += 1;
            continue;
        };
        if record.key() != stated {
            finding.foreign_rows += 1;
            continue;
        }
        let home = MapMemoStore::shard_of(stated);
        if home != shard {
            finding.misplaced_rows += 1;
        }
        match index_of.get(&stated) {
            Some(&i) => {
                finding.duplicate_keys += 1;
                rows[i] = (stated, home, record); // later wins, reader semantics
            }
            None => {
                index_of.insert(stated, rows.len());
                rows.push((stated, home, record));
            }
        }
    }
    finding.rows_ok = rows.len();
    Ok(Some(ParsedMemoShard { finding, rows }))
}

/// Strictly verify one memo base file: decode, checksum, and row-count
/// check. Returns `(rows, defects)` — non-empty defects means the
/// reader ignores the file.
fn verify_memo_base(path: &Path) -> (usize, Vec<String>) {
    match MapMemoStore::read_base(path) {
        Some(rows) => (rows.len(), Vec::new()),
        None => (0, vec!["checksum/row-count verification failed".to_string()]),
    }
}

/// Audit every mapping-memo base file, newest first: the newest
/// cleanly-verifying one is live, older ones are orphans a crashed
/// memo compaction left behind.
fn audit_memo_bases(memo_dir: &Path) -> Vec<GenerationFinding> {
    let mut out = Vec::new();
    let mut live_seen = false;
    for (seq, path) in MapMemoStore::base_files(memo_dir) {
        let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let (rows, defects) = verify_memo_base(&path);
        let clean = defects.is_empty();
        out.push(GenerationFinding { file: path, seq, rows, bytes, defects, orphaned: live_seen });
        if clean && !live_seen {
            live_seen = true;
        }
    }
    out
}

/// Audit the current generation of `cache`'s store. Read-only.
pub fn audit(cache: &EvalCache) -> io::Result<FsckReport> {
    let store_dir = cache.store_dir();
    let mut shards = Vec::new();
    for shard in 0..SHARD_COUNT {
        let path = store_dir.join(format!("shard-{shard:x}.csv"));
        if let Some(parsed) = parse_shard(&path, shard)? {
            shards.push(parsed.finding);
        }
    }
    let generations = audit_generations(&store_dir);
    let memo_dir = store_dir.join("mapmemo");
    let mut memo_shards = Vec::new();
    for shard in 0..SHARD_COUNT {
        let path = memo_dir.join(format!("shard-{shard:x}.csv"));
        if let Some(parsed) = parse_memo_shard(&path, shard)? {
            memo_shards.push(parsed.finding);
        }
    }
    let memo_bases = audit_memo_bases(&memo_dir);
    Ok(FsckReport {
        store_dir,
        shards,
        generations,
        memo_shards,
        memo_bases,
        quarantined: Vec::new(),
        memo_quarantined: Vec::new(),
        recompacted: false,
        repaired: false,
    })
}

/// Audit and repair: rewrite every dirty shard into canonical form
/// (header + its own deduplicated rows, misplaced rows moved home),
/// quarantine unreadable shards to `*.quarantine`, delete orphaned
/// generations and compactor tmps, and quarantine a corrupt generation
/// — then rebuild the base by re-compacting from the surviving layers
/// (older generation + CSV WAL). Returns the *pre-repair* findings
/// plus what was done; a follow-up [`audit`] must come back clean.
pub fn repair(cache: &EvalCache) -> io::Result<FsckReport> {
    let store_dir = cache.store_dir();
    let mut findings = Vec::new();
    let mut parsed: Vec<Option<ParsedShard>> = Vec::new();
    for shard in 0..SHARD_COUNT {
        let path = store_dir.join(format!("shard-{shard:x}.csv"));
        parsed.push(parse_shard(&path, shard)?);
    }
    // Move misplaced rows home before rewriting, preserving later-wins
    // precedence: a moved row appends *after* the home shard's own
    // rows, mirroring the order a correct append would have produced
    // (nobody could read the misplaced copy, so any home-shard copy
    // already won).
    let mut moved: Vec<Vec<(u64, EvaluatedPoint)>> = vec![Vec::new(); SHARD_COUNT];
    for p in parsed.iter().flatten() {
        for (key, home, point) in &p.rows {
            if *home != p.finding.shard {
                moved[*home].push((*key, *point));
            }
        }
    }
    let mut quarantined = Vec::new();
    for (shard, slot) in parsed.iter().enumerate() {
        let Some(p) = slot else {
            // Shard file absent — but moved rows may need a home here.
            if !moved[shard].is_empty() {
                let rows: Vec<EvaluatedPoint> =
                    moved[shard].iter().map(|(_, point)| *point).collect();
                let finding = rewrite_shard(&store_dir, shard, &rows, &[])?;
                findings.push(finding);
            }
            continue;
        };
        let path = store_dir.join(format!("shard-{shard:x}.csv"));
        if p.finding.unreadable {
            let target = path.with_extension("csv.quarantine");
            fs::rename(&path, &target)?;
            quarantined.push(shard);
            findings.push(p.finding.clone());
            continue;
        }
        if p.finding.is_clean() && moved[shard].is_empty() {
            findings.push(p.finding.clone());
            continue;
        }
        let mut home_keys: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let own: Vec<EvaluatedPoint> = p
            .rows
            .iter()
            .filter(|(_, home, _)| *home == shard)
            .map(|(key, _, point)| {
                home_keys.insert(*key);
                *point
            })
            .collect();
        let incoming: Vec<EvaluatedPoint> = moved[shard]
            .iter()
            .filter(|(key, _)| !home_keys.contains(key))
            .map(|(_, point)| *point)
            .collect();
        let finding = rewrite_shard(&store_dir, shard, &own, &incoming)?;
        findings.push(ShardFinding { rows_ok: finding.rows_ok, ..p.finding.clone() });
    }
    // Generation layer: orphans are deleted outright (nothing reads
    // them); a corrupt non-orphan is quarantined, then the base is
    // rebuilt from whatever survives — an older clean generation plus
    // the CSV WAL. Rows that existed *only* in the corrupt file simply
    // re-evaluate, the store's universal degradation mode.
    let generations = audit_generations(&store_dir);
    let mut lost_base = false;
    for g in &generations {
        if g.orphaned {
            let _ = fs::remove_file(&g.file);
        } else if !g.defects.is_empty() {
            let target = g.file.with_extension(format!("{}.quarantine", compact::GENERATION_EXT));
            fs::rename(&g.file, target)?;
            lost_base = true;
        }
    }
    let recompacted = lost_base && compact::compact(cache)?.generation.is_some();

    // Mapping-memo layer: same shard discipline at lower stakes — a
    // dropped memo row re-searches, it never corrupts results. Dirty
    // shards rewrite canonically (misplaced rows moved home),
    // unreadable shards quarantine, orphaned bases are deleted and
    // corrupt ones quarantined (the next `dse compact` rebuilds a base
    // from the surviving tail; until then lookups re-search the gap).
    let memo_dir = store_dir.join("mapmemo");
    let mut memo_parsed: Vec<Option<ParsedMemoShard>> = Vec::new();
    for shard in 0..SHARD_COUNT {
        let path = memo_dir.join(format!("shard-{shard:x}.csv"));
        memo_parsed.push(parse_memo_shard(&path, shard)?);
    }
    let mut memo_moved: Vec<Vec<(u64, MapRecord)>> = vec![Vec::new(); SHARD_COUNT];
    for p in memo_parsed.iter().flatten() {
        for (key, home, record) in &p.rows {
            if *home != p.finding.shard {
                memo_moved[*home].push((*key, *record));
            }
        }
    }
    let mut memo_findings = Vec::new();
    let mut memo_quarantined = Vec::new();
    for (shard, slot) in memo_parsed.iter().enumerate() {
        let Some(p) = slot else {
            if !memo_moved[shard].is_empty() {
                let rows: Vec<MapRecord> =
                    memo_moved[shard].iter().map(|(_, record)| *record).collect();
                memo_findings.push(rewrite_memo_shard(&memo_dir, shard, &rows, &[])?);
            }
            continue;
        };
        let path = memo_dir.join(format!("shard-{shard:x}.csv"));
        if p.finding.unreadable {
            fs::rename(&path, path.with_extension("csv.quarantine"))?;
            memo_quarantined.push(shard);
            memo_findings.push(p.finding.clone());
            continue;
        }
        if p.finding.is_clean() && memo_moved[shard].is_empty() {
            memo_findings.push(p.finding.clone());
            continue;
        }
        let mut home_keys: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let own: Vec<MapRecord> = p
            .rows
            .iter()
            .filter(|(_, home, _)| *home == shard)
            .map(|(key, _, record)| {
                home_keys.insert(*key);
                *record
            })
            .collect();
        let incoming: Vec<MapRecord> = memo_moved[shard]
            .iter()
            .filter(|(key, _)| !home_keys.contains(key))
            .map(|(_, record)| *record)
            .collect();
        let finding = rewrite_memo_shard(&memo_dir, shard, &own, &incoming)?;
        memo_findings.push(ShardFinding { rows_ok: finding.rows_ok, ..p.finding.clone() });
    }
    let memo_bases = audit_memo_bases(&memo_dir);
    for g in &memo_bases {
        if g.orphaned {
            let _ = fs::remove_file(&g.file);
        } else if !g.defects.is_empty() {
            fs::rename(&g.file, g.file.with_extension("csv.quarantine"))?;
        }
    }

    Ok(FsckReport {
        store_dir,
        shards: findings,
        generations,
        memo_shards: memo_findings,
        memo_bases,
        quarantined,
        memo_quarantined,
        recompacted,
        repaired: true,
    })
}

/// Atomically replace one memo shard with `header + own rows +
/// incoming rows`, holding the old file's advisory lock across the
/// swap (same protocol as [`rewrite_shard`]; the appenders' same-inode
/// re-check makes this safe against concurrent writers).
fn rewrite_memo_shard(
    memo_dir: &Path,
    shard: usize,
    own: &[MapRecord],
    incoming: &[MapRecord],
) -> io::Result<ShardFinding> {
    fs::create_dir_all(memo_dir)?;
    let path = memo_dir.join(format!("shard-{shard:x}.csv"));
    let mut body = format!(
        "# ng-dse mapping memo | model {MODEL_VERSION} | fingerprint {:016x}\n",
        model_fingerprint()
    );
    let mut rows_ok = 0usize;
    for record in own.iter().chain(incoming) {
        body.push_str(&format!("{:016x},{}\n", record.key(), record.to_row()));
        rows_ok += 1;
    }
    let lock = fs::OpenOptions::new().read(true).create(true).append(true).open(&path)?;
    if let Err(e) = lock.lock() {
        if e.kind() != io::ErrorKind::Unsupported {
            return Err(e);
        }
    }
    let tmp = path.with_extension(format!("csv.fsck.{}", std::process::id()));
    fs::write(&tmp, body)?;
    fs::rename(&tmp, &path)?;
    drop(lock);
    Ok(ShardFinding { shard, rows_ok, ..ShardFinding::default() })
}

/// Atomically replace one shard with `header + own rows + incoming
/// rows`, holding the old file's advisory lock across the swap so a
/// concurrent appender cannot write into the inode being discarded.
fn rewrite_shard(
    store_dir: &Path,
    shard: usize,
    own: &[EvaluatedPoint],
    incoming: &[EvaluatedPoint],
) -> io::Result<ShardFinding> {
    fs::create_dir_all(store_dir)?;
    let path = store_dir.join(format!("shard-{shard:x}.csv"));
    let mut body = format!(
        "# ng-dse point cache | model {MODEL_VERSION} | fingerprint {:016x}\n",
        model_fingerprint()
    );
    let mut rows_ok = 0usize;
    for point in own.iter().chain(incoming) {
        let key = EvalCache::point_key(&point.point);
        body.push_str(&format!("{key:016x},{}\n", point_to_row(point)));
        rows_ok += 1;
    }
    let lock = fs::OpenOptions::new().read(true).create(true).append(true).open(&path)?;
    if let Err(e) = lock.lock() {
        if e.kind() != io::ErrorKind::Unsupported {
            return Err(e);
        }
    }
    let tmp = path.with_extension(format!("csv.fsck.{}", std::process::id()));
    fs::write(&tmp, body)?;
    fs::rename(&tmp, &path)?;
    drop(lock);
    Ok(ShardFinding { shard, rows_ok, ..ShardFinding::default() })
}

/// Audit (and optionally repair) a JSONL event ledger: every line must
/// parse as one flat JSON event. Returns `(events, torn_lines)`;
/// repair rewrites the file without the torn lines (tmp+rename under
/// the ledger's lock, same discipline as the writers).
pub fn fsck_ledger(path: &Path, repair: bool) -> io::Result<(usize, usize)> {
    let text = fs::read_to_string(path)?;
    let mut kept = String::with_capacity(text.len());
    let mut events = 0usize;
    let mut torn = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let one = ng_obs::Ledger::parse(line);
        if one.skipped_lines == 0 && one.events.len() == 1 {
            events += 1;
            kept.push_str(line);
            kept.push('\n');
        } else {
            torn += 1;
        }
    }
    if repair && torn > 0 {
        let lock = fs::OpenOptions::new().read(true).append(true).open(path)?;
        if let Err(e) = lock.lock() {
            if e.kind() != io::ErrorKind::Unsupported {
                return Err(e);
            }
        }
        let tmp = path.with_extension(format!("fsck.{}", std::process::id()));
        fs::write(&tmp, kept)?;
        fs::rename(&tmp, path)?;
    }
    Ok((events, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use crate::sweep::SweepEngine;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-fsck-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated(tag: &str) -> (PathBuf, EvalCache, SweepSpec, Vec<EvaluatedPoint>) {
        let dir = tmpdir(tag);
        let spec = SweepSpec::quick();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let cache = EvalCache::new(&dir);
        cache.append(&outcome.points).unwrap();
        (dir, cache, spec, outcome.points)
    }

    #[test]
    fn clean_store_audits_clean() {
        let (dir, cache, spec, _) = populated("clean");
        let report = audit(&cache).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.rows_ok(), spec.point_count());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_defect_class_is_detected_and_repaired() {
        let (dir, cache, spec, points) = populated("defects");
        let key0 = EvalCache::point_key(&points[0].point);
        let shard0 = cache.shard_path(key0);
        // Duplicate key: append the first point again (later wins).
        cache.append(&points[..1]).unwrap();
        // Interior header + junk + foreign row + torn tail, all in the
        // first point's shard.
        let mut text = fs::read_to_string(&shard0).unwrap();
        text.push_str("# ng-dse point cache | interior header\n");
        text.push_str("this is not a row\n");
        text.push_str(&format!("{:016x},{}\n", key0 ^ 1, point_to_row(&points[0])));
        let torn = text.lines().last().unwrap()[..20].to_string();
        text.push_str(&torn);
        fs::write(&shard0, text).unwrap();
        // Misplaced row: a valid row of shard0's point written into a
        // different shard file.
        let other = cache
            .store_dir()
            .join(format!("shard-{:x}.csv", (EvalCache::shard_of(key0) + 1) % SHARD_COUNT));
        let mut other_text = fs::read_to_string(&other).unwrap_or_default();
        other_text.push_str(&format!("{key0:016x},{}\n", point_to_row(&points[0])));
        fs::write(&other, other_text).unwrap();

        let report = audit(&cache).unwrap();
        assert!(!report.is_clean());
        let s0 = report.shards.iter().find(|s| s.shard == EvalCache::shard_of(key0)).unwrap();
        assert!(s0.duplicate_keys >= 1, "{s0:?}");
        assert_eq!(s0.interior_headers, 1, "{s0:?}");
        assert!(s0.torn_rows >= 2, "junk + torn tail + foreign-junk: {s0:?}");
        assert!(s0.truncated_tail, "{s0:?}");
        let misplaced: usize = report.shards.iter().map(|s| s.misplaced_rows).sum();
        assert_eq!(misplaced, 1, "{report:?}");

        let repaired = repair(&cache).unwrap();
        assert!(repaired.repaired);
        let after = audit(&cache).unwrap();
        assert!(after.is_clean(), "{after:?}");
        assert_eq!(after.rows_ok(), spec.point_count(), "no serveable row lost");
        // The repaired store serves every point bit-identically.
        let served = cache.lookup(&spec.points());
        assert_eq!(served.into_iter().collect::<Option<Vec<_>>>().unwrap(), points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_row_detection_distinguishes_key_mismatch_from_torn() {
        let (dir, cache, _, points) = populated("foreign");
        let key0 = EvalCache::point_key(&points[0].point);
        let shard0 = cache.shard_path(key0);
        // A parseable row whose stated key belongs to no current-model
        // point: the stale-generation signature.
        let mut text = fs::read_to_string(&shard0).unwrap();
        text.push_str(&format!("{:016x},{}\n", key0 ^ 0xff, point_to_row(&points[0])));
        fs::write(&shard0, text).unwrap();
        let report = audit(&cache).unwrap();
        let s0 = report.shards.iter().find(|s| s.shard == EvalCache::shard_of(key0)).unwrap();
        assert_eq!(s0.foreign_rows, 1);
        assert_eq!(s0.torn_rows, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_shard_is_quarantined() {
        let (dir, cache, spec, points) = populated("quarantine");
        let key0 = EvalCache::point_key(&points[0].point);
        let shard0 = cache.shard_path(key0);
        fs::write(&shard0, [0xff, 0xfe, 0x00, 0x80, b'\n']).unwrap();
        let report = audit(&cache).unwrap();
        let s0 = report.shards.iter().find(|s| s.shard == EvalCache::shard_of(key0)).unwrap();
        assert!(s0.unreadable);
        let repaired = repair(&cache).unwrap();
        assert_eq!(repaired.quarantined, vec![EvalCache::shard_of(key0)]);
        assert!(shard0.with_extension("csv.quarantine").exists());
        assert!(!shard0.exists(), "quarantined shard moved aside");
        // Remaining shards still serve; the quarantined points miss.
        let served = cache.lookup(&spec.points());
        assert!(served.iter().filter(|s| s.is_some()).count() < spec.point_count());
        assert!(served.iter().filter(|s| s.is_some()).count() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_defects_are_detected_and_repaired_from_surviving_layers() {
        let (dir, cache, spec, points) = populated("genlayer");
        compact::compact(&cache).unwrap();
        assert!(audit(&cache).unwrap().is_clean(), "fresh compaction audits clean");
        // Re-append every point so the CSV WAL again holds the full
        // row set — the surviving layer repair will rebuild from.
        cache.append(&points).unwrap();
        let store = cache.store_dir();
        // Orphans: a crashed compactor's tmp and a superseded
        // generation the cleanup never reached.
        let live = compact::generation_files(&store)[0].1.clone();
        fs::copy(&live, store.join("gen-000000.ngcb")).unwrap();
        fs::write(store.join("gen-000001.ngcb.tmp.999"), b"half-written").unwrap();
        let report = audit(&cache).unwrap();
        assert!(!report.is_clean());
        let orphans = report.generations.iter().filter(|g| g.orphaned).count();
        assert_eq!(orphans, 2, "superseded copy + tmp: {report:?}");

        // Corruption: flip one payload byte of the live generation —
        // the clean superseded copy now steps up as the fallback base.
        let mut bytes = fs::read(&live).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&live, bytes).unwrap();
        let report = audit(&cache).unwrap();
        let corrupt =
            report.generations.iter().filter(|g| !g.defects.is_empty() && !g.orphaned).count();
        let orphans = report.generations.iter().filter(|g| g.orphaned).count();
        assert_eq!(corrupt, 1, "{report:?}");
        assert_eq!(orphans, 1, "only the tmp — the clean copy is now the live base: {report:?}");
        assert_eq!(report.base_rows(), spec.point_count(), "fallback base still serves");

        let repaired = repair(&cache).unwrap();
        assert!(repaired.recompacted, "base rebuilt from CSV + older generation");
        let after = audit(&cache).unwrap();
        assert!(after.is_clean(), "{after:?}");
        assert_eq!(after.base_rows(), spec.point_count());
        assert!(live.with_extension("ngcb.quarantine").exists());
        let served = cache.lookup(&spec.points());
        assert_eq!(served.into_iter().collect::<Option<Vec<_>>>().unwrap(), points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapmemo_defects_are_detected_and_repaired() {
        let (dir, cache, _, _) = populated("mapmemo");
        let store = crate::mapmemo::MapMemoStore::new(&dir);
        let records = [
            crate::mapmemo::MapRecord {
                mac_rows: 64,
                mac_cols: 64,
                rows: 64,
                cols: 32,
                spatial_n: 64,
                spatial_k: 32,
                weight_stationary: true,
                cycles: crate::mapmemo::MAP_SEARCH_BATCH,
                energy_uj: 1.5,
                candidates: 98,
            },
            crate::mapmemo::MapRecord {
                mac_rows: 32,
                mac_cols: 32,
                rows: 64,
                cols: 64,
                spatial_n: 32,
                spatial_k: 32,
                weight_stationary: false,
                cycles: 4 * crate::mapmemo::MAP_SEARCH_BATCH,
                energy_uj: 2.25,
                candidates: 60,
            },
        ];
        store.append(&records).unwrap();
        store.compact().unwrap();
        store.append(&records[..1]).unwrap();
        assert!(audit(&cache).unwrap().is_clean(), "fresh memo audits clean");

        // Torn tail + junk row in the first record's shard; a misplaced
        // copy of it in a neighbouring shard; a corrupt base.
        let key0 = records[0].key();
        let shard0 = store.shard_path(key0);
        let mut text = fs::read_to_string(&shard0).unwrap();
        text.push_str("not a memo row\n");
        let torn = format!("{key0:016x},{}", records[0].to_row());
        text.push_str(&torn[..torn.len() / 2]);
        fs::write(&shard0, text).unwrap();
        let other_shard =
            (crate::mapmemo::MapMemoStore::shard_of(key0) + 1) % crate::mapmemo::SHARD_COUNT;
        let other = store.store_dir().join(format!("shard-{other_shard:x}.csv"));
        fs::write(&other, format!("{key0:016x},{}\n", records[0].to_row())).unwrap();
        let base = crate::mapmemo::MapMemoStore::base_files(&store.store_dir())[0].1.clone();
        let mut bytes = fs::read(&base).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&base, bytes).unwrap();

        let report = audit(&cache).unwrap();
        assert!(!report.is_clean());
        let s0 = report
            .memo_shards
            .iter()
            .find(|s| s.shard == crate::mapmemo::MapMemoStore::shard_of(key0))
            .unwrap();
        assert!(s0.torn_rows >= 1, "{s0:?}");
        assert!(s0.truncated_tail, "{s0:?}");
        let misplaced: usize = report.memo_shards.iter().map(|s| s.misplaced_rows).sum();
        assert_eq!(misplaced, 1, "{report:?}");
        assert_eq!(report.memo_bases.iter().filter(|g| !g.defects.is_empty()).count(), 1);

        let repaired = repair(&cache).unwrap();
        assert!(repaired.repaired);
        let after = audit(&cache).unwrap();
        assert!(after.is_clean(), "{after:?}");
        // The corrupt base is quarantined, the tail rows survive — both
        // records still serve (record 0 from its healed shard, record 1
        // from the misplaced copy moved home).
        assert!(base.with_extension("csv.quarantine").exists());
        let served = store.load_all();
        assert_eq!(served.get(&records[0].key()), Some(&records[0]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_fsck_counts_and_repairs_torn_lines() {
        let dir = tmpdir("ledger");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        fs::write(
            &path,
            "{\"ev\":\"meta\",\"ts\":1,\"pid\":2,\"k\":\"a\",\"v\":\"b\"}\n\
             {\"ev\":\"ctr\",\"ts\":2,\"pid\":2,\"name\":\"x\",\"val\":3}\n\
             {\"ev\":\"sb\",\"ts\":3,\"pid\"",
        )
        .unwrap();
        assert_eq!(fsck_ledger(&path, false).unwrap(), (2, 1));
        assert_eq!(fsck_ledger(&path, true).unwrap(), (2, 1));
        assert_eq!(fsck_ledger(&path, false).unwrap(), (2, 0), "repair removed the torn line");
        fs::remove_dir_all(&dir).unwrap();
    }
}
