//! Hoisted [`ng_obs`] counter handles for the pipeline's hot paths.
//!
//! `ng_obs::counter(name)` takes the registry mutex, so hot loops must
//! not call it per event. Every counter the crate increments is
//! declared here once, behind a `OnceLock`: the first use pays the
//! registry lookup, every later use is a static deref plus one relaxed
//! `fetch_add`. Centralising the names also makes them greppable — the
//! ledger checks in `ng_obs::ledger` and the `--metrics` summary key
//! off these exact strings.

use std::sync::OnceLock;

use ng_obs::Counter;

macro_rules! hoisted {
    ($(#[$doc:meta])* $fn_name:ident => $name:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| ng_obs::counter($name))
        }
    };
}

hoisted!(
    /// Design points a sweep was asked for (hits + misses).
    sweep_points => "sweep.points"
);
hoisted!(
    /// Points served from the point store without evaluation.
    sweep_cache_hits => "sweep.cache_hits"
);
hoisted!(
    /// Points that had to be evaluated. Invariant (checked by
    /// `ng_obs::Ledger::check`): `sweep.cache_hits + sweep.fresh_evals
    /// == sweep.points` per process.
    sweep_fresh_evals => "sweep.fresh_evals"
);
hoisted!(
    /// Per-point tick from inside the evaluation pool — the live
    /// counter progress meters and worker heartbeats sample.
    eval_ticks => "eval.ticks"
);
hoisted!(
    /// Microseconds spent waiting for shard file locks in
    /// `EvalCache::append`.
    store_lock_wait_us => "store.lock_wait_us"
);
hoisted!(
    /// Torn shard tails terminated before appending.
    store_tail_heals => "store.tail_heals"
);
hoisted!(
    /// Rows appended to the point store.
    store_rows_appended => "store.rows_appended"
);
hoisted!(
    /// Transient shard-append failures retried (with backoff) before
    /// the append succeeded or gave up.
    store_retries => "store.retries"
);
hoisted!(
    /// Torn or corrupt rows skipped while loading shards — rows that
    /// silently became misses. Non-zero after a crash is expected;
    /// growth during steady state is a store bug.
    cache_rows_skipped => "cache.rows_skipped"
);
hoisted!(
    /// Rows diverted to the in-memory overlay because the store's
    /// filesystem is exhausted (ENOSPC/EROFS/quota): the sweep
    /// completed, but these rows will re-evaluate next run. Non-zero
    /// means "free some disk" — the run degraded instead of dying.
    store_degraded_appends => "store.degraded_appends"
);
hoisted!(
    /// Job manifests persisted (creations and status rewrites alike).
    jobs_manifests_written => "jobs.manifests_written"
);
hoisted!(
    /// Jobs re-entered via `dse resume`.
    jobs_resumed => "jobs.resumed"
);
hoisted!(
    /// Store compactions completed (a binary generation was written).
    store_compact_runs => "store.compact_runs"
);
hoisted!(
    /// Rows folded into binary generations by the compactor.
    store_compact_rows => "store.compact_rows"
);
hoisted!(
    /// Lookup hits served from the compact binary base.
    store_base_hits => "store.base_hits"
);
hoisted!(
    /// Lookup hits served from the live CSV tail (which shadows the
    /// base on overlap).
    store_tail_hits => "store.tail_hits"
);
hoisted!(
    /// Points accepted into a streaming Pareto frontier.
    frontier_inserts => "frontier.inserts"
);
hoisted!(
    /// Archived points evicted by a newly dominant one.
    frontier_prunes => "frontier.prunes"
);
hoisted!(
    /// Successful steals in the work-stealing pool.
    pool_steals => "pool.steals"
);
hoisted!(
    /// Hill-climb proposals that improved the incumbent.
    search_hill_accepted => "search.hill.accepted"
);
hoisted!(
    /// Hill-climb proposals evaluated but not improving.
    search_hill_rejected => "search.hill.rejected"
);
hoisted!(
    /// Evolutionary offspring that entered the Pareto archive.
    search_evo_accepted => "search.evo.accepted"
);
hoisted!(
    /// Evolutionary offspring evaluated but dominated.
    search_evo_rejected => "search.evo.rejected"
);
hoisted!(
    /// Per-layer mapping searches actually run by `--map-search`
    /// (memo misses; each one enumerates the full mapspace).
    mapsearch_evals => "mapsearch.evals"
);
hoisted!(
    /// Per-layer mapping lookups served without a search — from the
    /// on-disk memo store or the in-run memo. Invariant:
    /// `mapsearch.evals + mapsearch.memo_hits` equals the number of
    /// `(point, layer)` lookups `--map-search` performed.
    mapsearch_memo_hits => "mapsearch.memo_hits"
);
hoisted!(
    /// Rows appended to the mapping-memo store.
    mapmemo_rows_appended => "mapmemo.rows_appended"
);
hoisted!(
    /// Torn or corrupt rows skipped while loading the mapping memo —
    /// each one is a search that will silently re-run.
    mapmemo_rows_skipped => "mapmemo.rows_skipped"
);
hoisted!(
    /// Worker child processes the coordinator spawned.
    distrib_workers_spawned => "distrib.workers_spawned"
);
hoisted!(
    /// Worker heartbeat events the coordinator observed.
    distrib_heartbeats_seen => "distrib.heartbeats_seen"
);
hoisted!(
    /// Points the coordinator re-evaluated because a worker's slice
    /// came back incomplete.
    distrib_recovered_points => "distrib.recovered_points"
);
hoisted!(
    /// Slice leases the coordinator revoked (stalled heartbeat or
    /// frozen progress past the stall window).
    distrib_leases_expired => "distrib.leases_expired"
);
hoisted!(
    /// Stalled worker processes the coordinator killed.
    distrib_workers_killed => "distrib.workers_killed"
);
hoisted!(
    /// Replacement workers spawned to take over a revoked lease.
    distrib_leases_reassigned => "distrib.leases_reassigned"
);
