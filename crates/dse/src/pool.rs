//! A small work-stealing thread pool for sweep evaluation.
//!
//! Each worker owns a deque of item indices, pops work from its own
//! front, and steals from the *back* of the busiest victim when it runs
//! dry — the classic Chase–Lev discipline (here with mutexed deques:
//! the work items are coarse enough that lock traffic is noise). Every
//! index is dispatched exactly once, results are written back by index,
//! and the output order is therefore the input order no matter how the
//! steals interleave.
//!
//! Workers get private per-worker state (built by a caller-supplied
//! factory) so evaluation can memoize aggressively without any shared
//! locks on the hot path — the sweep engine passes
//! `ngpc::EmulationContext::new` here.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Map `f` over `items` on `threads` work-stealing workers, each with
/// its own state from `make_state`. Returns one result per item, in
/// item order.
pub fn map_stateful<T, R, S, FS, F>(items: &[T], threads: usize, make_state: FS, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    map_stateful_partial(items, threads, make_state, f, || false)
        .into_iter()
        .map(|r| r.expect("every item evaluated"))
        .collect()
}

/// [`map_stateful`] with a cancellation predicate: workers stop taking
/// new items once `cancel()` turns true (in-flight items finish — the
/// drain lets every lease complete its current point). Returns one
/// slot per item in item order; `None` marks the undispatched tail.
pub fn map_stateful_partial<T, R, S, FS, F, C>(
    items: &[T],
    threads: usize,
    make_state: FS,
    f: F,
    cancel: C,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
    C: Fn() -> bool + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());

    // Seed each worker's deque with a contiguous slab of indices, so
    // initial work is cache-friendly and steals only happen at the tail
    // of the sweep.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = items.len() * w / threads;
            let hi = items.len() * (w + 1) / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    let steals = crate::obs_counters::pool_steals();
    std::thread::scope(|scope| {
        for me in 0..threads {
            let sender = sender.clone();
            let queues = &queues;
            let make_state = &make_state;
            let f = &f;
            let cancel = &cancel;
            scope.spawn(move || {
                let mut state = make_state();
                loop {
                    // A drain stops the dispatch of *new* items; the
                    // point being evaluated always completes (its
                    // result is flushed by the caller).
                    if cancel() {
                        break;
                    }
                    // Own work first (front: preserves the slab order)…
                    let mut next = queues[me].lock().unwrap().pop_front();
                    // …then steal from the back of the deepest other
                    // queue, rescanning on a lost race (a steal may
                    // find its victim drained between the length scan
                    // and the pop); exit only once every queue has
                    // been observed empty.
                    while next.is_none() {
                        let victim = (0..queues.len())
                            .filter(|&v| v != me)
                            .map(|v| (queues[v].lock().unwrap().len(), v))
                            .max();
                        match victim {
                            Some((len, v)) if len > 0 => {
                                next = queues[v].lock().unwrap().pop_back();
                                if next.is_some() {
                                    steals.incr();
                                }
                            }
                            _ => break,
                        }
                    }
                    match next {
                        Some(i) => {
                            // The receiver outlives every worker; send
                            // cannot fail.
                            sender.send((i, f(&mut state, &items[i]))).unwrap();
                        }
                        None => break,
                    }
                }
            });
        }
        drop(sender);

        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in receiver {
            debug_assert!(out[i].is_none(), "item {i} dispatched twice");
            out[i] = Some(r);
        }
        out
    })
}

/// `std::thread::available_parallelism`, defaulting to 1 when unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 7, 64] {
            let out = map_stateful(&items, threads, || (), |_, &x| x * x);
            assert_eq!(out.len(), items.len());
            for (i, &r) in out.iter().enumerate() {
                assert_eq!(r, (i as u64) * (i as u64), "threads={threads}");
            }
        }
    }

    #[test]
    fn every_item_evaluated_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..337).collect();
        let out = map_stateful(
            &items,
            8,
            || (),
            |_, &x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert_eq!(out.len(), 337);
        assert_eq!(calls.load(Ordering::Relaxed), 337);
    }

    #[test]
    fn state_is_created_once_per_worker_and_reused() {
        // The whole point of per-worker state is amortization (one
        // memoizing EmulationContext per worker, not per item): the
        // factory must run at most `threads` times, and each state's
        // call counter must cover its items exactly once each.
        let factory_calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        let out = map_stateful(
            &items,
            4,
            || (factory_calls.fetch_add(1, Ordering::Relaxed), 0usize),
            |(worker, seen), &x| {
                *seen += 1;
                (*worker, *seen, x)
            },
        );
        assert!(factory_calls.load(Ordering::Relaxed) <= 4, "one state per worker at most");
        // Per worker, the observed counter values must be exactly
        // 1..=k for its k items — proving sequential private reuse
        // (a fresh-state-per-item bug would yield all 1s).
        let mut per_worker: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for &(worker, seen, _) in &out {
            per_worker.entry(worker).or_default().push(seen);
        }
        for (worker, mut seens) in per_worker {
            seens.sort_unstable();
            assert_eq!(
                seens,
                (1..=seens.len()).collect::<Vec<_>>(),
                "worker {worker} reused its state non-sequentially"
            );
        }
    }

    #[test]
    fn uneven_work_still_completes() {
        // Skewed cost forces steals; correctness must be unaffected.
        let items: Vec<u64> = (0..64).collect();
        let out = map_stateful(
            &items,
            4,
            || (),
            |_, &x| {
                if x < 4 {
                    // A few heavy items at the front of worker 0's slab.
                    (0..200_000u64).fold(x, |a, b| a.wrapping_add(b % 7))
                } else {
                    x
                }
            },
        );
        assert_eq!(out.len(), 64);
        for (i, &r) in out.iter().enumerate().skip(4) {
            assert_eq!(r, i as u64);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_stateful(&empty, 8, || (), |_, &x| x).is_empty());
        assert_eq!(map_stateful(&[41u8], 8, || (), |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn cancellation_drains_without_losing_completed_items() {
        // Cancel after 10 completions: every completed slot is correct,
        // nothing runs after the workers observe the flag, and the
        // never-cancelled predicate reproduces the total map.
        let done = AtomicUsize::new(0);
        let items: Vec<u64> = (0..500).collect();
        let out = map_stateful_partial(
            &items,
            4,
            || (),
            |_, &x| {
                done.fetch_add(1, Ordering::Relaxed);
                x * 2
            },
            || done.load(Ordering::Relaxed) >= 10,
        );
        assert_eq!(out.len(), items.len());
        let completed = out.iter().flatten().count();
        assert!(completed >= 10, "at least the pre-cancel items completed");
        assert!(completed < items.len(), "the tail was left undispatched");
        for (i, slot) in out.iter().enumerate() {
            if let Some(r) = slot {
                assert_eq!(*r, (i as u64) * 2);
            }
        }
        let total = map_stateful_partial(&items, 4, || (), |_, &x| x * 2, || false);
        assert!(total.iter().all(Option::is_some));
    }
}
