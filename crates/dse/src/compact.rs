//! Binary point-store generations and the compactor behind
//! `dse compact`.
//!
//! The CSV shards of [`crate::cache`] are a write-ahead log: append-only,
//! crash-safe, human-auditable — and parsed row by row on every cold
//! load, which ROADMAP flags as the cold-start bottleneck once stores
//! reach 10^6+ points. This module adds the checkpoint layer: a
//! **compacted, checksummed, binary columnar generation** per model
//! fingerprint that `EvalCache` loads with a single `read` and serves
//! by binary search, with zero per-row parsing.
//!
//! ## File format (`gen-NNNNNN.ngcb`)
//!
//! ```text
//! [ 0.. 8)  magic  "ngDSEcb1"
//! [ 8..16)  model fingerprint (LE u64; must match the store dir's)
//! [16..24)  row count
//! [24..32)  sparse-index stride
//! [32..40)  section count
//! [40.. N)  section table: (offset, len, checksum) per section
//! [ N..N+8) header checksum over bytes [0..N)
//! [ ...  )  section payloads, in table order
//! ```
//!
//! Sections are fixed-width columns — sorted keys first, then a sparse
//! key index (every `stride`-th key, so a lookup touches one cache-warm
//! slice of the key column), then one column per
//! [`EvaluatedPoint`] field with floats stored as IEEE bit patterns.
//! The CSV emitter's shortest-round-trip text already made text parsing
//! bit-exact; the binary path stores the same bits directly, so folding
//! CSV into a generation can never move a value.
//!
//! ## Compaction protocol
//!
//! 1. take the store's `compact.lock` (two compactors serialise);
//! 2. load the newest valid generation (the base being folded);
//! 3. under each shard's lock, snapshot the shard's bytes and record
//!    its *fold offset* — appends racing the compactor land past the
//!    offset and survive step 5;
//! 4. merge base + CSV rows (CSV wins), write `gen-(seq+1)` via
//!    tmp + full read-back verification + rename — the old generation
//!    is untouched until the new one proves loadable;
//! 5. truncate each CSV shard back to `header + bytes past the fold
//!    offset` (tmp + rename under the shard lock);
//! 6. delete superseded generations.
//!
//! A crash at any point leaves a store readers serve identically:
//! before the rename the new generation is an ignored tmp file; after
//! it, base and CSV tail overlap and the tail's duplicates shadow
//! bit-identical base rows. `dse fsck` names every leftover
//! (tmp orphans, superseded generations, corrupt latest) and
//! `--repair` re-compacts from the surviving layers.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::cache::{EvalCache, SHARD_COUNT};
use crate::obs_counters;
use crate::spec::DesignPoint;
use crate::sweep::EvaluatedPoint;
use crate::{model_fingerprint, MODEL_VERSION};
use ng_neural::apps::{AppKind, EncodingKind};

/// Magic bytes opening every generation file (the trailing digit is
/// the format version — bump it and old files read as corrupt, which
/// `fsck --repair` resolves by re-compacting).
pub const MAGIC: &[u8; 8] = b"ngDSEcb1";

/// File extension of a generation (`ngcb` = ng compact binary).
pub const GENERATION_EXT: &str = "ngcb";

/// Every `STRIDE`-th key is mirrored into the sparse index section, so
/// a lookup binary-searches ~`STRIDE * 8` bytes of the key column
/// instead of all of it.
pub const INDEX_STRIDE: usize = 256;

/// Section order in the file. Keys and the sparse index lead; the rest
/// are one fixed-width column per `EvaluatedPoint` field.
const SEC_KEYS: usize = 0;
const SEC_INDEX: usize = 1;
const SEC_POINT_INDEX: usize = 2;
const SEC_APP: usize = 3;
const SEC_ENCODING: usize = 4;
const SEC_PIXELS: usize = 5;
const SEC_NFP: usize = 6;
const SEC_CLOCK: usize = 7;
const SEC_SRAM_KB: usize = 8;
const SEC_SRAM_BANKS: usize = 9;
const SEC_ENGINES: usize = 10;
const SEC_MAC_ROWS: usize = 11;
const SEC_MAC_COLS: usize = 12;
const SEC_LANES: usize = 13;
const SEC_FIFO: usize = 14;
const SEC_SPEEDUP: usize = 15;
const SEC_AREA: usize = 16;
const SEC_POWER: usize = 17;
const SEC_GPU_MS: usize = 18;
const SEC_FRAME_MS: usize = 19;
const SEC_AMDAHL: usize = 20;
const SEC_PLATEAU: usize = 21;
const SECTION_COUNT: usize = 22;

/// Integrity checksum over a byte section: FNV-style over 8-byte
/// little-endian lanes (with an extra fold so high bytes influence low
/// ones), seeded with the length. Word-at-a-time keeps verification
/// off the cold-load critical path even on 10^8-byte generations —
/// this is torn-write detection, not cryptography.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 =
        0xCBF2_9CE4_8422_2325 ^ (bytes.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 32;
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn corrupt(path: &Path, what: impl fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: corrupt generation: {what}", path.display()),
    )
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

/// Stable one-byte encodings of the enum columns. Indexes into the
/// paper-order `ALL` arrays, which the CSV slugs already froze as the
/// store vocabulary.
fn app_code(app: AppKind) -> u8 {
    AppKind::ALL.iter().position(|a| *a == app).expect("ALL covers every app") as u8
}

fn app_from_code(code: u8) -> Option<AppKind> {
    AppKind::ALL.get(code as usize).copied()
}

fn encoding_code(encoding: EncodingKind) -> u8 {
    EncodingKind::ALL.iter().position(|e| *e == encoding).expect("ALL covers every encoding") as u8
}

fn encoding_from_code(code: u8) -> Option<EncodingKind> {
    EncodingKind::ALL.get(code as usize).copied()
}

/// A loaded, checksum-verified generation: the raw file bytes plus the
/// section table. Lookups binary-search the key column in place —
/// nothing is parsed until a row is actually served.
#[derive(Debug)]
pub struct CompactBase {
    buf: Vec<u8>,
    rows: usize,
    stride: usize,
    /// `(offset, len)` per section, validated against the buffer.
    sections: Vec<(usize, usize)>,
    seq: u64,
    path: PathBuf,
}

impl CompactBase {
    /// Load and fully verify one generation file: magic, fingerprint,
    /// header checksum, section bounds and every section checksum.
    /// Key-order verification is a separate cheap pass so corrupt
    /// *sorted-ness* (which would silently break binary search) is
    /// caught at load time too.
    pub fn load(path: &Path) -> io::Result<CompactBase> {
        let buf = fs::read(path)?;
        let base = Self::from_bytes(buf, path)?;
        let keys = base.section(SEC_KEYS);
        let mut prev: Option<u64> = None;
        for i in 0..base.rows {
            let key = read_u64(keys, i * 8);
            if prev.is_some_and(|p| p >= key) {
                return Err(corrupt(path, format!("keys not strictly ascending at row {i}")));
            }
            prev = Some(key);
        }
        Ok(base)
    }

    /// Parse and checksum-verify `buf` (everything except key order).
    fn from_bytes(buf: Vec<u8>, path: &Path) -> io::Result<CompactBase> {
        if buf.len() < 48 {
            return Err(corrupt(path, "shorter than the fixed header"));
        }
        if &buf[..8] != MAGIC {
            return Err(corrupt(path, "bad magic"));
        }
        let fingerprint = read_u64(&buf, 8);
        if fingerprint != model_fingerprint() {
            return Err(corrupt(
                path,
                format!(
                    "fingerprint {fingerprint:016x} does not match the current models \
                     ({:016x})",
                    model_fingerprint()
                ),
            ));
        }
        let rows = read_u64(&buf, 16) as usize;
        let stride = read_u64(&buf, 24) as usize;
        let section_count = read_u64(&buf, 32) as usize;
        if section_count != SECTION_COUNT {
            return Err(corrupt(path, format!("expected {SECTION_COUNT} sections")));
        }
        if stride == 0 {
            return Err(corrupt(path, "zero index stride"));
        }
        let table_end = 40 + section_count * 24;
        if buf.len() < table_end + 8 {
            return Err(corrupt(path, "truncated section table"));
        }
        if read_u64(&buf, table_end) != checksum(&buf[..table_end]) {
            return Err(corrupt(path, "header checksum mismatch"));
        }
        let mut sections = Vec::with_capacity(section_count);
        for s in 0..section_count {
            let at = 40 + s * 24;
            let offset = read_u64(&buf, at) as usize;
            let len = read_u64(&buf, at + 8) as usize;
            let sum = read_u64(&buf, at + 16);
            let end = offset.checked_add(len).filter(|e| *e <= buf.len());
            let Some(end) = end else {
                return Err(corrupt(path, format!("section {s} out of bounds")));
            };
            if checksum(&buf[offset..end]) != sum {
                return Err(corrupt(path, format!("section {s} checksum mismatch")));
            }
            sections.push((offset, len));
        }
        let expect = |s: usize, width: usize| -> io::Result<()> {
            if sections[s].1 != rows * width {
                return Err(corrupt(path, format!("section {s} has the wrong width")));
            }
            Ok(())
        };
        for s in [SEC_KEYS, SEC_POINT_INDEX, SEC_PIXELS, SEC_CLOCK] {
            expect(s, 8)?;
        }
        for s in [
            SEC_NFP,
            SEC_SRAM_KB,
            SEC_SRAM_BANKS,
            SEC_ENGINES,
            SEC_MAC_ROWS,
            SEC_MAC_COLS,
            SEC_LANES,
            SEC_FIFO,
        ] {
            expect(s, 4)?;
        }
        for s in [SEC_SPEEDUP, SEC_AREA, SEC_POWER, SEC_GPU_MS, SEC_FRAME_MS, SEC_AMDAHL] {
            expect(s, 8)?;
        }
        for s in [SEC_APP, SEC_ENCODING, SEC_PLATEAU] {
            expect(s, 1)?;
        }
        if sections[SEC_INDEX].1 != rows.div_ceil(stride) * 8 {
            return Err(corrupt(path, "sparse index has the wrong length"));
        }
        let seq = parse_generation_seq(path).unwrap_or(0);
        Ok(CompactBase { buf, rows, stride, sections, seq, path: path.to_path_buf() })
    }

    fn section(&self, s: usize) -> &[u8] {
        let (offset, len) = self.sections[s];
        &self.buf[offset..offset + len]
    }

    /// Rows in this generation.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// On-disk size in bytes.
    pub fn bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// This generation's sequence number (from its file name).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The file this base was loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn key_at(&self, i: usize) -> u64 {
        read_u64(self.section(SEC_KEYS), i * 8)
    }

    /// The row index holding `key`, via sparse index + bounded binary
    /// search of the key column. No row is decoded.
    pub fn find(&self, key: u64) -> Option<usize> {
        if self.rows == 0 {
            return None;
        }
        let index = self.section(SEC_INDEX);
        let blocks = self.rows.div_ceil(self.stride);
        // First indexed block whose leading key exceeds `key` bounds
        // the search; the block before it may contain the key.
        let mut lo_block = 0usize;
        let mut hi_block = blocks;
        while lo_block < hi_block {
            let mid = (lo_block + hi_block) / 2;
            if read_u64(index, mid * 8) <= key {
                lo_block = mid + 1;
            } else {
                hi_block = mid;
            }
        }
        if lo_block == 0 {
            return None; // key precedes the first stored key
        }
        let mut lo = (lo_block - 1) * self.stride;
        let mut hi = (lo + self.stride).min(self.rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key_at(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Serve one key, if present.
    pub fn get(&self, key: u64) -> Option<EvaluatedPoint> {
        self.find(key).and_then(|i| self.decode_row(i))
    }

    /// Decode row `i` from the column sections. `None` only if an enum
    /// code is out of vocabulary — which checksummed sections make
    /// unreachable short of a format bug, so callers treat it as a
    /// miss, the store's universal degradation mode.
    pub fn decode_row(&self, i: usize) -> Option<EvaluatedPoint> {
        let u64_col = |s: usize| read_u64(self.section(s), i * 8);
        let u32_col = |s: usize| read_u32(self.section(s), i * 4);
        let f64_col = |s: usize| f64::from_bits(u64_col(s));
        Some(EvaluatedPoint {
            point: DesignPoint {
                index: u64_col(SEC_POINT_INDEX) as usize,
                app: app_from_code(self.section(SEC_APP)[i])?,
                encoding: encoding_from_code(self.section(SEC_ENCODING)[i])?,
                pixels: u64_col(SEC_PIXELS),
                nfp_units: u32_col(SEC_NFP),
                clock_ghz: f64_col(SEC_CLOCK),
                grid_sram_kb: u32_col(SEC_SRAM_KB),
                grid_sram_banks: u32_col(SEC_SRAM_BANKS),
                encoding_engines: u32_col(SEC_ENGINES),
                mac_rows: u32_col(SEC_MAC_ROWS),
                mac_cols: u32_col(SEC_MAC_COLS),
                lanes_per_engine: u32_col(SEC_LANES),
                input_fifo_depth: u32_col(SEC_FIFO),
            },
            speedup: f64_col(SEC_SPEEDUP),
            area_pct_of_gpu: f64_col(SEC_AREA),
            power_pct_of_gpu: f64_col(SEC_POWER),
            gpu_ms: f64_col(SEC_GPU_MS),
            ngpc_frame_ms: f64_col(SEC_FRAME_MS),
            amdahl_bound: f64_col(SEC_AMDAHL),
            plateaued: self.section(SEC_PLATEAU)[i] != 0,
        })
    }

    /// Iterate every `(key, row)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, EvaluatedPoint)> + '_ {
        (0..self.rows).filter_map(|i| Some((self.key_at(i), self.decode_row(i)?)))
    }
}

/// Serialise `rows` (sorted by strictly ascending key) into the binary
/// generation image.
fn encode_generation(rows: &[(u64, EvaluatedPoint)]) -> Vec<u8> {
    let n = rows.len();
    let mut cols: Vec<Vec<u8>> = vec![Vec::new(); SECTION_COUNT];
    for s in [
        SEC_KEYS,
        SEC_POINT_INDEX,
        SEC_PIXELS,
        SEC_CLOCK,
        SEC_SPEEDUP,
        SEC_AREA,
        SEC_POWER,
        SEC_GPU_MS,
        SEC_FRAME_MS,
        SEC_AMDAHL,
    ] {
        cols[s].reserve(n * 8);
    }
    for (key, p) in rows {
        let d = &p.point;
        cols[SEC_KEYS].extend_from_slice(&key.to_le_bytes());
        cols[SEC_POINT_INDEX].extend_from_slice(&(d.index as u64).to_le_bytes());
        cols[SEC_APP].push(app_code(d.app));
        cols[SEC_ENCODING].push(encoding_code(d.encoding));
        cols[SEC_PIXELS].extend_from_slice(&d.pixels.to_le_bytes());
        cols[SEC_NFP].extend_from_slice(&d.nfp_units.to_le_bytes());
        cols[SEC_CLOCK].extend_from_slice(&d.clock_ghz.to_bits().to_le_bytes());
        cols[SEC_SRAM_KB].extend_from_slice(&d.grid_sram_kb.to_le_bytes());
        cols[SEC_SRAM_BANKS].extend_from_slice(&d.grid_sram_banks.to_le_bytes());
        cols[SEC_ENGINES].extend_from_slice(&d.encoding_engines.to_le_bytes());
        cols[SEC_MAC_ROWS].extend_from_slice(&d.mac_rows.to_le_bytes());
        cols[SEC_MAC_COLS].extend_from_slice(&d.mac_cols.to_le_bytes());
        cols[SEC_LANES].extend_from_slice(&d.lanes_per_engine.to_le_bytes());
        cols[SEC_FIFO].extend_from_slice(&d.input_fifo_depth.to_le_bytes());
        cols[SEC_SPEEDUP].extend_from_slice(&p.speedup.to_bits().to_le_bytes());
        cols[SEC_AREA].extend_from_slice(&p.area_pct_of_gpu.to_bits().to_le_bytes());
        cols[SEC_POWER].extend_from_slice(&p.power_pct_of_gpu.to_bits().to_le_bytes());
        cols[SEC_GPU_MS].extend_from_slice(&p.gpu_ms.to_bits().to_le_bytes());
        cols[SEC_FRAME_MS].extend_from_slice(&p.ngpc_frame_ms.to_bits().to_le_bytes());
        cols[SEC_AMDAHL].extend_from_slice(&p.amdahl_bound.to_bits().to_le_bytes());
        cols[SEC_PLATEAU].push(p.plateaued as u8);
    }
    for (i, (key, _)) in rows.iter().enumerate() {
        if i % INDEX_STRIDE == 0 {
            cols[SEC_INDEX].extend_from_slice(&key.to_le_bytes());
        }
    }

    let table_end = 40 + SECTION_COUNT * 24;
    let payload: usize = cols.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(table_end + 8 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&model_fingerprint().to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(INDEX_STRIDE as u64).to_le_bytes());
    out.extend_from_slice(&(SECTION_COUNT as u64).to_le_bytes());
    let mut offset = table_end + 8;
    for col in &cols {
        out.extend_from_slice(&(offset as u64).to_le_bytes());
        out.extend_from_slice(&(col.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(col).to_le_bytes());
        offset += col.len();
    }
    let header_sum = checksum(&out[..table_end]);
    out.extend_from_slice(&header_sum.to_le_bytes());
    for col in &cols {
        out.extend_from_slice(col);
    }
    out
}

/// `gen-NNNNNN.ngcb` for sequence `seq`.
pub fn generation_file_name(seq: u64) -> String {
    format!("gen-{seq:06}.{GENERATION_EXT}")
}

/// Parse the sequence number out of a generation file name.
pub fn parse_generation_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("gen-")?;
    let seq = rest.strip_suffix(&format!(".{GENERATION_EXT}"))?;
    seq.parse().ok()
}

/// Every generation file in `store_dir`, newest sequence first.
/// Tmp leftovers (`*.ngcb.tmp.*`) are not included — see
/// [`orphaned_tmp_files`].
pub fn generation_files(store_dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = fs::read_dir(store_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if let Some(seq) = parse_generation_seq(&path) {
            out.push((seq, path));
        }
    }
    out.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
    out
}

/// Tmp files a crashed compactor left behind (never read; deleted by
/// the next compaction or `fsck --repair`).
pub fn orphaned_tmp_files(store_dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(store_dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("gen-") && n.contains(&format!(".{GENERATION_EXT}.tmp."))
            })
        })
        .collect();
    out.sort();
    out
}

/// The newest generation that loads and verifies cleanly, if any.
/// A corrupt newer file falls back to the retained older one (the
/// crash-between-verify-and-cleanup window), so a half-finished
/// compaction can only ever *shrink* the base, never poison it.
pub fn load_latest(store_dir: &Path) -> Option<CompactBase> {
    for (_, path) in generation_files(store_dir) {
        if let Ok(base) = CompactBase::load(&path) {
            return Some(base);
        }
    }
    None
}

/// What one `compact()` run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// The generation directory compacted.
    pub store_dir: PathBuf,
    /// Sequence number of the generation written (`None`: nothing to
    /// fold, no file written).
    pub generation: Option<u64>,
    /// Rows carried over from the previous generation.
    pub base_rows_in: usize,
    /// Live CSV rows folded in (reader-visible rows; CSV wins over the
    /// base on duplicate keys).
    pub csv_rows_in: usize,
    /// Rows in the new generation.
    pub rows_out: usize,
    /// Size of the new generation file.
    pub bytes_out: u64,
    /// CSV shard files truncated back to their unfolded tails.
    pub shards_truncated: usize,
    /// Superseded generation files removed.
    pub removed_generations: usize,
    /// Stale compactor tmp files swept up.
    pub removed_tmp_files: usize,
    /// Misplaced CSV rows (wrong shard file) left for `fsck`; they are
    /// unreachable to readers, so folding them in would *change*
    /// lookup results rather than preserve them.
    pub misplaced_rows_skipped: usize,
}

impl fmt::Display for CompactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.generation {
            None => {
                write!(f, "compact {}: store is empty — nothing to fold", self.store_dir.display())
            }
            Some(seq) => write!(
                f,
                "compact {}: wrote generation {seq} ({} row(s), {:.1} KiB) from {} base + {} \
                 CSV row(s); truncated {} shard(s), removed {} old generation(s){}{}",
                self.store_dir.display(),
                self.rows_out,
                self.bytes_out as f64 / 1024.0,
                self.base_rows_in,
                self.csv_rows_in,
                self.shards_truncated,
                self.removed_generations,
                if self.removed_tmp_files > 0 {
                    format!(", swept {} stale tmp file(s)", self.removed_tmp_files)
                } else {
                    String::new()
                },
                if self.misplaced_rows_skipped > 0 {
                    format!(
                        ", left {} misplaced row(s) for `dse fsck`",
                        self.misplaced_rows_skipped
                    )
                } else {
                    String::new()
                },
            ),
        }
    }
}

/// Open (creating if needed) and exclusively lock a file, tolerating
/// filesystems without lock support — the same degradation contract as
/// the shard appenders.
fn open_locked(path: &Path) -> io::Result<fs::File> {
    let file = fs::OpenOptions::new().read(true).create(true).append(true).open(path)?;
    if let Err(e) = file.lock() {
        if e.kind() != io::ErrorKind::Unsupported {
            return Err(e);
        }
    }
    Ok(file)
}

/// One shard's fold snapshot: the parsed reader-visible rows, the byte
/// offset everything before which is now in the generation, and how
/// many misplaced rows were skipped.
struct ShardFold {
    rows: HashMap<u64, EvaluatedPoint>,
    folded_len: u64,
    misplaced: usize,
}

fn fold_shard(store_dir: &Path, shard: usize) -> io::Result<Option<ShardFold>> {
    let path = store_dir.join(format!("shard-{shard:x}.csv"));
    if !path.exists() {
        return Ok(None);
    }
    // Snapshot under the shard's exclusive lock: the recorded length
    // is then exactly the content parsed, and any append that raced us
    // lands wholly past it (where step 5 preserves it).
    let mut file = open_locked(&path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let folded_len = bytes.len() as u64;
    drop(file);
    let text = String::from_utf8_lossy(&bytes);
    let (parsed, _skipped) = crate::cache::parse_shard_text(&text);
    let mut rows = HashMap::with_capacity(parsed.len());
    let mut misplaced = 0usize;
    for (key, point) in parsed {
        // Rows in a foreign shard file are invisible to readers:
        // folding them into the base would change lookup results.
        if EvalCache::shard_of(key) == shard {
            rows.insert(key, point);
        } else {
            misplaced += 1;
        }
    }
    Ok(Some(ShardFold { rows, folded_len, misplaced }))
}

/// Truncate one CSV shard back to `header + bytes past folded_len`,
/// via tmp + rename while holding the old inode's lock — an appender
/// blocked on that lock re-checks the path after acquiring it (see
/// `EvalCache::append_shard`) and lands its rows in the new file.
fn truncate_shard(store_dir: &Path, shard: usize, folded_len: u64) -> io::Result<()> {
    let path = store_dir.join(format!("shard-{shard:x}.csv"));
    let mut file = open_locked(&path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let tail = bytes.get(folded_len as usize..).unwrap_or(&[]);
    let mut fresh = format!(
        "# ng-dse point cache | model {MODEL_VERSION} | fingerprint {:016x}\n",
        model_fingerprint()
    )
    .into_bytes();
    fresh.extend_from_slice(tail);
    let tmp = path.with_extension(format!("csv.compact.{}", std::process::id()));
    fs::write(&tmp, fresh)?;
    fs::rename(&tmp, &path)?;
    drop(file);
    Ok(())
}

/// Fold the store's live CSV shards (plus the previous generation)
/// into a fresh binary generation, then truncate the shards back to
/// their unfolded tails. Safe against concurrent appenders and
/// readers; a crash at any stage leaves a store that serves
/// identically (see the module docs for the protocol).
pub fn compact(cache: &EvalCache) -> io::Result<CompactReport> {
    let _span = ng_obs::span("compact");
    let store_dir = cache.store_dir();
    let mut report = CompactReport { store_dir: store_dir.clone(), ..CompactReport::default() };
    if !store_dir.exists() {
        return Ok(report);
    }
    // One compactor at a time: a second caller blocks, then folds
    // whatever (typically nothing) is left.
    let lock = open_locked(&store_dir.join("compact.lock"))?;

    // Stale tmp files are dead weight from crashed compactors — sweep
    // them first so they cannot accumulate.
    for tmp in orphaned_tmp_files(&store_dir) {
        if fs::remove_file(&tmp).is_ok() {
            report.removed_tmp_files += 1;
        }
    }

    let base = load_latest(&store_dir);
    let latest_seq = generation_files(&store_dir).first().map(|(seq, _)| *seq);
    let mut merged: HashMap<u64, EvaluatedPoint> = match &base {
        Some(base) => base.iter().collect(),
        None => HashMap::new(),
    };
    report.base_rows_in = merged.len();

    let mut folds: Vec<Option<ShardFold>> = Vec::with_capacity(SHARD_COUNT);
    for shard in 0..SHARD_COUNT {
        folds.push(fold_shard(&store_dir, shard)?);
    }
    for fold in folds.iter().flatten() {
        report.csv_rows_in += fold.rows.len();
        report.misplaced_rows_skipped += fold.misplaced;
        // CSV is the newer layer: it overwrites base rows — which a
        // reader's tail-wins overlay already preferred.
        merged.extend(fold.rows.iter().map(|(k, v)| (*k, *v)));
    }
    if merged.is_empty() {
        return Ok(report);
    }

    let mut rows: Vec<(u64, EvaluatedPoint)> = merged.into_iter().collect();
    rows.sort_unstable_by_key(|(key, _)| *key);
    let image = encode_generation(&rows);
    let seq = latest_seq.map_or(1, |s| s + 1);
    let final_path = store_dir.join(generation_file_name(seq));
    let tmp_path =
        store_dir.join(format!("{}.tmp.{}", generation_file_name(seq), std::process::id()));
    fs::write(&tmp_path, &image)?;
    if let Some(e) = ng_fault::compact_crash_at(1) {
        return Err(e); // generation written but unverified: tmp orphan
    }

    // A drain aborts *before publish*: the rename below is the point
    // of no return, and an interrupted compaction must leave the old
    // base + CSV tail authoritative. The tmp image is removed here
    // (and would be swept as an orphan by the next compaction even if
    // this removal lost a race with the hard-exit path).
    if crate::cancel::cancelled() {
        let _ = fs::remove_file(&tmp_path);
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "compaction cancelled before publish; store unchanged",
        ));
    }

    // Read-back verification before the rename makes the new
    // generation live: the old base stays authoritative until the new
    // file proves loadable from disk.
    let verified = CompactBase::load(&tmp_path)?;
    if verified.rows() != rows.len() {
        return Err(corrupt(&tmp_path, "read-back row count mismatch"));
    }
    fs::rename(&tmp_path, &final_path)?;
    if let Some(e) = ng_fault::compact_crash_at(2) {
        return Err(e); // generation live, CSV tail not yet truncated
    }

    for (shard, fold) in folds.iter().enumerate() {
        let Some(fold) = fold else { continue };
        truncate_shard(&store_dir, shard, fold.folded_len)?;
        report.shards_truncated += 1;
        if report.shards_truncated == 1 {
            if let Some(e) = ng_fault::compact_crash_at(3) {
                return Err(e); // mid-truncation: shards disagree on layer
            }
        }
    }

    for (old_seq, path) in generation_files(&store_dir) {
        if old_seq < seq && fs::remove_file(&path).is_ok() {
            report.removed_generations += 1;
        }
    }
    drop(lock);

    report.generation = Some(seq);
    report.rows_out = rows.len();
    report.bytes_out = image.len() as u64;
    obs_counters::store_compact_runs().incr();
    obs_counters::store_compact_rows().add(rows.len() as u64);
    ng_obs::emit_meta(
        "store.compact",
        &format!("generation {seq}: {} row(s), {} bytes", rows.len(), image.len()),
    );
    Ok(report)
}

/// Strict single-generation verification for `dse fsck`: every check
/// [`CompactBase::load`] performs, plus sparse-index consistency and a
/// full per-row decode with key re-hashing (the binary analogue of the
/// CSV auditor's foreign-row check). Returns `(rows, bytes, defects)`;
/// an unloadable file reports itself as one defect.
pub fn verify_generation(path: &Path) -> (usize, u64, Vec<String>) {
    let bytes = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let base = match CompactBase::load(path) {
        Ok(base) => base,
        Err(e) => return (0, bytes, vec![e.to_string()]),
    };
    let mut defects = Vec::new();
    let index = base.section(SEC_INDEX);
    for block in 0..base.rows.div_ceil(base.stride) {
        if read_u64(index, block * 8) != base.key_at(block * base.stride) {
            defects.push(format!("sparse index entry {block} disagrees with the key column"));
        }
    }
    let mut decoded = 0usize;
    for i in 0..base.rows {
        match base.decode_row(i) {
            Some(point) => {
                decoded += 1;
                if EvalCache::point_key(&point.point) != base.key_at(i) {
                    defects.push(format!("row {i}: axes no longer hash to the stored key"));
                }
            }
            None => defects.push(format!("row {i}: enum code out of vocabulary")),
        }
    }
    (decoded, bytes, defects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use crate::sweep::SweepEngine;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-compact-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_points() -> Vec<EvaluatedPoint> {
        SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap().points
    }

    #[test]
    fn binary_image_round_trips_every_column_bit_exactly() {
        let points = quick_points();
        let mut rows: Vec<(u64, EvaluatedPoint)> =
            points.iter().map(|p| (EvalCache::point_key(&p.point), *p)).collect();
        rows.sort_unstable_by_key(|(key, _)| *key);
        let dir = tmpdir("roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(generation_file_name(1));
        fs::write(&path, encode_generation(&rows)).unwrap();
        let base = CompactBase::load(&path).unwrap();
        assert_eq!(base.rows(), rows.len());
        for (key, expect) in &rows {
            assert_eq!(base.get(*key).as_ref(), Some(expect), "key {key:016x}");
        }
        assert_eq!(base.get(0), None);
        assert_eq!(base.get(u64::MAX), None);
        let via_iter: Vec<(u64, EvaluatedPoint)> = base.iter().collect();
        assert_eq!(via_iter, rows, "iteration preserves key order and values");
        let (decoded, bytes, defects) = verify_generation(&path);
        assert_eq!((decoded, bytes), (rows.len(), base.bytes()));
        assert!(defects.is_empty(), "{defects:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let points = quick_points();
        let rows: Vec<(u64, EvaluatedPoint)> = {
            let mut rows: Vec<_> =
                points.iter().map(|p| (EvalCache::point_key(&p.point), *p)).collect();
            rows.sort_unstable_by_key(|(key, _): &(u64, EvaluatedPoint)| *key);
            rows
        };
        let image = encode_generation(&rows);
        let dir = tmpdir("flip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(generation_file_name(1));
        // Flip one byte at a spread of offsets across header, table and
        // payload: every single one must fail verification.
        for at in (0..image.len()).step_by(image.len() / 97 + 1) {
            let mut bad = image.clone();
            bad[at] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(CompactBase::load(&path).is_err(), "flip at {at} went undetected");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_then_lookup_serves_the_same_rows() {
        let dir = tmpdir("fold");
        let spec = SweepSpec::quick();
        let points = quick_points();
        let cache = EvalCache::new(&dir);
        cache.append(&points).unwrap();
        let before = cache.lookup(&spec.points());
        let report = compact(&cache).unwrap();
        assert_eq!(report.generation, Some(1));
        assert_eq!(report.rows_out, points.len());
        assert_eq!(report.csv_rows_in, points.len());
        assert_eq!(report.base_rows_in, 0);
        // The CSV tail is now just headers...
        assert_eq!(cache.shard_stats().iter().map(|(r, _)| r).sum::<usize>(), 0);
        // ...and every lookup is served from the base, bit-identically.
        let after = cache.lookup(&spec.points());
        assert_eq!(before, after);
        assert_eq!(
            after.into_iter().collect::<Option<Vec<_>>>().unwrap(),
            points,
            "layered reader serves the full sweep from the generation"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_compaction_folds_base_and_fresh_tail() {
        let dir = tmpdir("refold");
        let points = quick_points();
        let cache = EvalCache::new(&dir);
        let half = points.len() / 2;
        cache.append(&points[..half]).unwrap();
        assert_eq!(compact(&cache).unwrap().generation, Some(1));
        cache.append(&points[half..]).unwrap();
        let report = compact(&cache).unwrap();
        assert_eq!(report.generation, Some(2));
        assert_eq!(report.base_rows_in, half);
        assert_eq!(report.csv_rows_in, points.len() - half);
        assert_eq!(report.rows_out, points.len());
        assert_eq!(report.removed_generations, 1, "generation 1 superseded and removed");
        assert_eq!(generation_files(&cache.store_dir()).len(), 1);
        let loaded = cache.lookup(&SweepSpec::quick().points());
        assert_eq!(loaded.into_iter().collect::<Option<Vec<_>>>().unwrap(), points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_keys_fold_latest_wins() {
        let dir = tmpdir("dups");
        let points = quick_points();
        let cache = EvalCache::new(&dir);
        cache.append(&points).unwrap();
        // Re-append the first three points with altered metrics: the
        // appended (later) copy must be the one the generation keeps.
        let mut altered: Vec<EvaluatedPoint> = points[..3].to_vec();
        for p in &mut altered {
            p.speedup *= 2.0;
            p.plateaued = !p.plateaued;
        }
        cache.append(&altered).unwrap();
        compact(&cache).unwrap();
        for (i, p) in altered.iter().enumerate() {
            let served = cache.lookup(&[p.point])[0].expect("hit");
            assert_eq!(served.speedup, p.speedup, "dup {i}: later copy wins");
            assert_eq!(served.plateaued, p.plateaued);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_stores_compact_to_nothing() {
        let dir = tmpdir("empty");
        let cache = EvalCache::new(&dir);
        let report = compact(&cache).unwrap();
        assert_eq!(report.generation, None);
        assert!(!cache.store_dir().exists(), "no store dir conjured up");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_generation_falls_back_to_the_previous_one() {
        let dir = tmpdir("fallback");
        let points = quick_points();
        let cache = EvalCache::new(&dir);
        cache.append(&points).unwrap();
        compact(&cache).unwrap();
        // Fabricate a corrupt "newer" generation.
        let store = cache.store_dir();
        fs::write(store.join(generation_file_name(9)), b"ngDSEcb1 garbage").unwrap();
        let base = load_latest(&store).expect("fallback base");
        assert_eq!(base.seq(), 1, "newest *valid* generation wins");
        let loaded = cache.lookup(&SweepSpec::quick().points());
        assert_eq!(loaded.into_iter().collect::<Option<Vec<_>>>().unwrap(), points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_survive_compaction() {
        // Appenders hammering the store *while* it is being compacted:
        // every row — folded or raced — must read back afterwards.
        let dir = tmpdir("race");
        let spec = SweepSpec::mac_arrays();
        let outcome = SweepEngine::new().without_cache().run(&spec).unwrap();
        let points = outcome.points;
        let cache = EvalCache::new(&dir);
        let half = points.len() / 2;
        cache.append(&points[..half]).unwrap();
        std::thread::scope(|scope| {
            let writers = 4;
            for w in 0..writers {
                let slice: Vec<EvaluatedPoint> = points[half..]
                    .iter()
                    .filter(|p| p.point.index % writers == w)
                    .copied()
                    .collect();
                let cache = EvalCache::new(&dir);
                scope.spawn(move || {
                    for p in &slice {
                        cache.append(std::slice::from_ref(p)).unwrap();
                    }
                });
            }
            let compactor = EvalCache::new(&dir);
            scope.spawn(move || {
                for _ in 0..3 {
                    compact(&compactor).unwrap();
                }
            });
        });
        compact(&cache).unwrap();
        let loaded = cache.lookup(&spec.points());
        assert_eq!(
            loaded.into_iter().collect::<Option<Vec<_>>>().expect("no row lost to the race"),
            points,
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
