//! Compact terminal reporting for sweep outcomes.

use ng_neural::apps::AppKind;

use crate::pareto::Constraints;
use crate::spec::encoding_slug;
use crate::sweep::{ArchPoint, EvaluatedPoint, SweepOutcome};

/// Render a fixed-width table: header row, rule, data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(widths.len()) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = String::new();
    out.push_str(&line(&head));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

fn arch_row(a: &ArchPoint) -> Vec<String> {
    vec![
        format!("NGPC-{}", a.nfp_units),
        encoding_slug(a.encoding).to_string(),
        format!("{:.2}", a.clock_ghz),
        format!("{}K/{}", a.grid_sram_kb, a.grid_sram_banks),
        format!("{}x{}/{}e", a.mac_rows, a.mac_cols, a.encoding_engines),
        format!("{}l/{}f", a.lanes_per_engine, a.input_fifo_depth),
        format!("{:.2}x", a.avg_speedup),
        format!("{:.2}%", a.area_pct_of_gpu),
        format!("{:.2}%", a.power_pct_of_gpu),
    ]
}

const ARCH_HEADERS: [&str; 9] = [
    "config",
    "encoding",
    "GHz",
    "sram/banks",
    "macs/eng",
    "lanes/fifo",
    "avg x",
    "area %",
    "power %",
];

/// The cross-app-average frontier as a table (top `limit` rows by
/// ascending area).
pub fn frontier_table(frontier: &[ArchPoint], limit: usize) -> String {
    let rows: Vec<Vec<String>> = frontier.iter().take(limit).map(arch_row).collect();
    let mut out = render_table(&ARCH_HEADERS, &rows);
    if frontier.len() > limit {
        out.push_str(&format!("... {} more frontier points\n", frontier.len() - limit));
    }
    out
}

fn point_row(p: &EvaluatedPoint) -> Vec<String> {
    let d = &p.point;
    vec![
        format!("NGPC-{}", d.nfp_units),
        encoding_slug(d.encoding).to_string(),
        format!("{:.2}", d.clock_ghz),
        format!("{}K/{}", d.grid_sram_kb, d.grid_sram_banks),
        format!("{}x{}/{}e", d.mac_rows, d.mac_cols, d.encoding_engines),
        format!("{}l/{}f", d.lanes_per_engine, d.input_fifo_depth),
        format!("{:.2}x", p.speedup),
        format!("{:.2}%", p.area_pct_of_gpu),
        format!("{:.2}%", p.power_pct_of_gpu),
        if p.plateaued { "yes".to_string() } else { "no".to_string() },
    ]
}

const POINT_HEADERS: [&str; 10] = [
    "config",
    "encoding",
    "GHz",
    "sram/banks",
    "macs/eng",
    "lanes/fifo",
    "speedup",
    "area %",
    "power %",
    "plateau",
];

/// One app's frontier as a table.
pub fn per_app_table(points: &[EvaluatedPoint], limit: usize) -> String {
    let rows: Vec<Vec<String>> = points.iter().take(limit).map(point_row).collect();
    let mut out = render_table(&POINT_HEADERS, &rows);
    if points.len() > limit {
        out.push_str(&format!("... {} more frontier points\n", points.len() - limit));
    }
    out
}

/// The `--cache-stats` line: per-run hit/miss/evaluated counts, so
/// users can see the incremental reuse they are getting.
pub fn cache_stats_line(outcome: &SweepOutcome) -> String {
    let stats = &outcome.stats;
    let rate = if stats.total_points == 0 {
        0.0
    } else {
        100.0 * stats.cache_hits as f64 / stats.total_points as f64
    };
    // Misses and evaluated coincide today (every miss is evaluated),
    // but are derived independently so the line stays honest if a
    // partial-evaluation mode ever splits them.
    let misses = stats.total_points - stats.cache_hits;
    format!(
        "cache stats: {} hits, {misses} misses, {} evaluated ({rate:.1}% hit rate{})",
        stats.cache_hits,
        stats.evaluated,
        match &outcome.cache_path {
            Some(p) => format!("; store: {}", p.display()),
            None => "; cache disabled".to_string(),
        },
    )
}

/// The `--cache-stats` extension lines: both store layers (compact
/// binary base + live CSV tail, per shard), this process's
/// base-vs-tail hit split, the store's cumulative lock-wait and
/// torn-tail-heal counters, degraded (overlay-diverted) appends, and
/// the store's durable job manifests. `stats` is one
/// [`crate::cache::EvalCache::store_stats`] snapshot.
#[allow(clippy::too_many_arguments)] // a stats snapshot, not an API
pub fn shard_stats_report(
    stats: &crate::cache::StoreStats,
    base_hits: u64,
    tail_hits: u64,
    lock_wait_us: u64,
    heals: u64,
    rows_skipped: u64,
    degraded_appends: u64,
    jobs: &[crate::job::JobManifest],
) -> String {
    let counts: Vec<String> = stats.shards.iter().map(|(r, _)| r.to_string()).collect();
    let base_line = match stats.base {
        Some((seq, rows, bytes)) => format!(
            "store base: generation {seq}, {rows} row(s), {:.1} KiB binary",
            bytes as f64 / 1024.0
        ),
        None => "store base: none (CSV only — run `dse compact`)".to_string(),
    };
    let resumable = jobs.iter().filter(|j| j.status != crate::job::JobStatus::Done).count();
    format!(
        "{base_line}\n\
         store tail: [{}] rows ({} live CSV, {:.1} KiB on disk)\n\
         store hits this process: {base_hits} from base, {tail_hits} from tail\n\
         store lock wait: {:.2} ms cumulative this process; {heals} torn tail(s) healed; \
         {rows_skipped} corrupt row(s) skipped{}\n\
         store degraded appends this process: {degraded_appends} row(s){}\n\
         store jobs: {} manifest(s), {resumable} resumable{}",
        counts.join(" "),
        stats.tail_rows(),
        stats.tail_bytes() as f64 / 1024.0,
        lock_wait_us as f64 / 1000.0,
        if rows_skipped > 0 { " (run `dse fsck` to audit)" } else { "" },
        if degraded_appends > 0 {
            " diverted to the in-memory overlay — free some disk; they re-evaluate next run"
        } else {
            ""
        },
        jobs.len(),
        if resumable > 0 { " (`dse resume` picks the newest)" } else { "" },
    )
}

/// The `--cache-stats` lines for the mapping-memo store, mirroring the
/// point store's [`shard_stats_report`] block: compacted base +
/// per-shard live CSV tail, plus this process's search-vs-memo split
/// and append/skip counters. `stats` is one
/// [`crate::mapmemo::MapMemoStore::store_stats`] snapshot.
pub fn mapmemo_stats_report(
    stats: &crate::mapmemo::MapMemoStats,
    evals: u64,
    memo_hits: u64,
    rows_appended: u64,
    rows_skipped: u64,
) -> String {
    let counts: Vec<String> = stats.shards.iter().map(|(r, _)| r.to_string()).collect();
    let base_line = match stats.base {
        Some((seq, rows, bytes)) => format!(
            "mapping memo base: generation {seq}, {rows} row(s), {:.1} KiB",
            bytes as f64 / 1024.0
        ),
        None => "mapping memo base: none (CSV only — run `dse compact`)".to_string(),
    };
    format!(
        "{base_line}\n\
         mapping memo tail: [{}] rows ({} live CSV, {:.1} KiB on disk)\n\
         mapping searches this process: {evals} run, {memo_hits} memo hit(s); \
         {rows_appended} row(s) appended, {rows_skipped} corrupt row(s) skipped{}",
        counts.join(" "),
        stats.tail_rows(),
        stats.tail_bytes() as f64 / 1024.0,
        if rows_skipped > 0 { " (run `dse fsck` to audit)" } else { "" },
    )
}

/// The terminal report of a guided search: space/budget summary and the
/// recovered frontier (filtered through `constraints`).
pub fn print_search_report(
    outcome: &crate::search::SearchOutcome,
    constraints: &Constraints,
    top: usize,
) {
    let stats = &outcome.stats;
    println!(
        "guided search `{}` ({}): {} of {} points evaluated ({:.2}% of the space, budget {}){}",
        outcome.spec.name,
        outcome.search.strategy.slug(),
        stats.evaluations,
        stats.space_points,
        100.0 * stats.budget_fraction_used(),
        stats.budget,
        if stats.exhaustive { " — budget covers the space: exhaustive scan" } else { "" },
    );
    println!(
        "visited {} of {} architectures in {} round(s), {:.1} ms ({} cache hits)",
        stats.archs_visited,
        stats.space_archs,
        stats.rounds,
        stats.wall.as_secs_f64() * 1e3,
        stats.cache_hits,
    );
    println!("constraints: {}", describe_constraints(constraints));
    let shown: Vec<ArchPoint> =
        outcome.frontier.iter().filter(|a| constraints.admits(&a.objectives())).copied().collect();
    println!("\nrecovered cross-app Pareto frontier ({} architectures):", shown.len());
    print!("{}", frontier_table(&shown, top));
}

/// Describe configured constraints, or "none".
pub fn describe_constraints(c: &Constraints) -> String {
    if !c.is_constrained() {
        return "none".to_string();
    }
    let mut parts = Vec::new();
    if let Some(b) = c.max_area_pct {
        parts.push(format!("area ≤ {b}%"));
    }
    if let Some(b) = c.max_power_pct {
        parts.push(format!("power ≤ {b}%"));
    }
    if let Some(b) = c.min_speedup {
        parts.push(format!("speedup ≥ {b}x"));
    }
    parts.join(", ")
}

/// The full terminal report: spec/run summary, cross-app frontier, and
/// (optionally) per-app frontiers.
pub fn print_report(outcome: &SweepOutcome, constraints: &Constraints, top: usize, per_app: bool) {
    let spec = &outcome.spec;
    let stats = &outcome.stats;
    println!(
        "sweep `{}`: {} points ({} apps x {} encodings x {} resolutions x {} nfp x {} clocks x {} srams x {} banks x {} engines x {} mac-rows x {} mac-cols x {} lanes x {} fifos)",
        spec.name,
        stats.total_points,
        spec.apps.len(),
        spec.encodings.len(),
        spec.pixels.len(),
        spec.nfp_units.len(),
        spec.clock_ghz.len(),
        spec.grid_sram_kb.len(),
        spec.grid_sram_banks.len(),
        spec.encoding_engines.len(),
        spec.mac_rows.len(),
        spec.mac_cols.len(),
        spec.lanes_per_engine.len(),
        spec.input_fifo_depth.len(),
    );
    if stats.cache_hit {
        println!(
            "evaluation: cache HIT ({} points loaded in {:.1} ms from {})",
            stats.total_points,
            stats.wall.as_secs_f64() * 1e3,
            outcome.cache_path.as_deref().map(|p| p.display().to_string()).unwrap_or_default(),
        );
    } else {
        let hits = if stats.cache_hits > 0 {
            format!(" + {} from cache", stats.cache_hits)
        } else {
            String::new()
        };
        println!(
            "evaluation: {} points on {} threads{hits} in {:.1} ms ({:.0} points/sec){}",
            stats.evaluated,
            stats.threads,
            stats.wall.as_secs_f64() * 1e3,
            stats.points_per_sec(),
            match &outcome.cache_path {
                Some(p) => format!(", cached to {}", p.display()),
                None => String::new(),
            },
        );
    }
    println!("constraints: {}", describe_constraints(constraints));

    let frontier = outcome.cross_app_frontier(constraints);
    println!(
        "\ncross-app-average Pareto frontier ({} of {} architectures):",
        frontier.len(),
        outcome.cross_app().len(),
    );
    print!("{}", frontier_table(&frontier, top));

    if per_app {
        for app in AppKind::ALL {
            if !spec.apps.contains(&app) {
                continue;
            }
            let f = outcome.per_app_frontier(app, constraints);
            println!("\n{app} Pareto frontier ({} points):", f.len());
            print!("{}", per_app_table(&f, top));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use crate::sweep::SweepEngine;

    #[test]
    fn tables_render_aligned() {
        let outcome = SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap();
        let frontier = outcome.cross_app_frontier(&Constraints::NONE);
        let table = frontier_table(&frontier, 10);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines.len() >= 3, "header, rule, at least one row");
        assert_eq!(lines[0].len(), lines[2].len(), "fixed-width rows");
        assert!(lines[0].contains("avg x"));
    }

    #[test]
    fn truncation_is_reported() {
        let outcome = SweepEngine::new().without_cache().run(&SweepSpec::quick()).unwrap();
        let frontier = outcome.cross_app_frontier(&Constraints::NONE);
        assert!(frontier.len() > 1);
        let table = frontier_table(&frontier, 1);
        assert!(table.contains("more frontier points"));
    }

    #[test]
    fn constraints_description() {
        assert_eq!(describe_constraints(&Constraints::NONE), "none");
        let c =
            Constraints { max_area_pct: Some(3.0), max_power_pct: Some(5.0), min_speedup: None };
        assert_eq!(describe_constraints(&c), "area ≤ 3%, power ≤ 5%");
    }
}
