//! Durable job manifests: the crash-safe record `dse resume` reads.
//!
//! Every cache-enabled sweep/search/distributed run writes a
//! `job-*.json` manifest into `<cache_dir>/jobs/` before evaluating
//! (tmp + rename, the store's publish discipline) and rewrites it when
//! the run ends — `done` on success, `interrupted` after a graceful
//! drain. The manifest carries everything a resume needs to re-enter
//! the *exact* run: the resolved spec as TOML (the same byte-exact
//! round-trip the distributed backend ships to workers), the model
//! fingerprint the results were computed under, the run mode and its
//! flags (threads/workers, output paths, constraints, search
//! strategy/budget/seed), and a progress snapshot.
//!
//! Resume needs no partial-result file of its own: the point store
//! already holds every flushed point, so re-entering the run replays
//! the prefix as warm hits and pays only the missing tail. A resumed
//! search replays the same seeded trajectory — the prefix evaluations
//! are hits, the tail is fresh — so the outcome is byte-identical to
//! an uninterrupted run. A manifest whose fingerprint no longer
//! matches the current models is refused: resuming it would silently
//! mix generations.
//!
//! The format is the crate's usual hand-rolled flat JSON (one object,
//! string and number values) — parseable by eye in a crash dump and
//! by the ~60-line scanner below.

use std::io;
use std::path::{Path, PathBuf};

use crate::obs_counters;
use crate::spec::{SpecError, SweepSpec};

/// Which entry point the job ran under — resume re-enters the same one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMode {
    /// Single-process exhaustive sweep.
    Sweep,
    /// Guided search (`--search`).
    Search,
    /// Multi-process sweep (`--workers N`).
    Distrib,
}

impl JobMode {
    /// The manifest's `mode` field value.
    pub fn as_str(self) -> &'static str {
        match self {
            JobMode::Sweep => "sweep",
            JobMode::Search => "search",
            JobMode::Distrib => "distrib",
        }
    }

    /// Parse a `mode` field value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sweep" => Some(JobMode::Sweep),
            "search" => Some(JobMode::Search),
            "distrib" => Some(JobMode::Distrib),
            _ => None,
        }
    }
}

/// Where the job stands. Transitions: `Running` → `Done` |
/// `Interrupted`; a resumed job flips back to `Running` and then ends
/// like any other. A `Running` manifest whose process is gone means a
/// hard crash — `dse resume` treats it like `Interrupted` (the store
/// holds whatever was flushed either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The run is (or was, if the process died) in flight.
    Running,
    /// The run drained on a signal; the tail is unevaluated.
    Interrupted,
    /// Every point delivered.
    Done,
}

impl JobStatus {
    /// The manifest's `status` field value.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Running => "running",
            JobStatus::Interrupted => "interrupted",
            JobStatus::Done => "done",
        }
    }

    /// Parse a `status` field value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "running" => Some(JobStatus::Running),
            "interrupted" => Some(JobStatus::Interrupted),
            "done" => Some(JobStatus::Done),
            _ => None,
        }
    }
}

/// One durable job record. Every field a resume needs, nothing the
/// store already holds.
#[derive(Debug, Clone, PartialEq)]
pub struct JobManifest {
    /// `job-<epoch_us>-<pid>`: sortable by creation, unique per
    /// process, filename-safe.
    pub id: String,
    /// Which entry point to re-enter.
    pub mode: JobMode,
    /// Where the job stands.
    pub status: JobStatus,
    /// Microseconds since the epoch at creation.
    pub created_us: u64,
    /// [`crate::MODEL_VERSION`] at creation — a resume under different
    /// models is refused, not silently re-keyed.
    pub model_version: String,
    /// [`crate::model_fingerprint`] at creation (same refusal).
    pub fingerprint: u64,
    /// The resolved spec, exactly as [`SweepSpec::to_toml`] wrote it.
    pub spec_toml: String,
    /// The store this job reads and writes.
    pub cache_dir: String,
    /// Points in the spec (search: evaluation budget).
    pub total_points: usize,
    /// Points known flushed when the manifest was last written. A
    /// progress note for humans and `dse resume`'s report — the store
    /// is the authority.
    pub delivered: usize,
    /// `--threads`, when given explicitly.
    pub threads: Option<usize>,
    /// `--workers`, for [`JobMode::Distrib`].
    pub workers: Option<usize>,
    /// `--csv` output path.
    pub csv: Option<String>,
    /// `--json` output path.
    pub json_out: Option<String>,
    /// `--search` strategy (`hill`/`evolve`), for [`JobMode::Search`].
    pub search_strategy: Option<String>,
    /// `--budget`, for [`JobMode::Search`].
    pub budget: Option<usize>,
    /// `--seed` — the whole reason a drained search can resume
    /// byte-identically.
    pub seed: Option<u64>,
    /// `--max-area` constraint.
    pub max_area: Option<f64>,
    /// `--max-power` constraint.
    pub max_power: Option<f64>,
    /// `--min-speedup` constraint.
    pub min_speedup: Option<f64>,
    /// `--map-search`: annotate points with searched mappings on
    /// resume too (the memo store makes the replay warm).
    pub map_search: bool,
}

/// Where a store's job manifests live.
pub fn jobs_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("jobs")
}

impl JobManifest {
    /// A fresh `Running` manifest for a run about to start. Computes
    /// the id from wall clock + pid and snapshots the model identity;
    /// the caller fills the optional flags and calls [`save`].
    ///
    /// [`save`]: JobManifest::save
    pub fn new(mode: JobMode, spec: &SweepSpec, cache_dir: &str, total_points: usize) -> Self {
        let created_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        JobManifest {
            id: format!("job-{created_us}-{}", std::process::id()),
            mode,
            status: JobStatus::Running,
            created_us,
            model_version: crate::MODEL_VERSION.to_string(),
            fingerprint: crate::model_fingerprint(),
            spec_toml: spec.to_toml(),
            cache_dir: cache_dir.to_string(),
            total_points,
            delivered: 0,
            threads: None,
            workers: None,
            csv: None,
            json_out: None,
            search_strategy: None,
            budget: None,
            seed: None,
            max_area: None,
            max_power: None,
            min_speedup: None,
            map_search: false,
        }
    }

    /// This manifest's on-disk path.
    pub fn path(&self) -> PathBuf {
        jobs_dir(Path::new(&self.cache_dir)).join(format!("{}.json", self.id))
    }

    /// The spec this job runs, parsed back out of the manifest.
    pub fn spec(&self) -> Result<SweepSpec, SpecError> {
        SweepSpec::from_toml_str(&self.spec_toml)
    }

    /// Whether the current process's models match the ones the job's
    /// results were computed under.
    pub fn models_match(&self) -> bool {
        self.model_version == crate::MODEL_VERSION && self.fingerprint == crate::model_fingerprint()
    }

    /// Persist the manifest crash-safely: write a tmp file in the jobs
    /// dir, then rename over the final name — a reader (or a crash)
    /// sees the old complete manifest or the new complete one, never a
    /// torn hybrid.
    pub fn save(&self) -> io::Result<PathBuf> {
        let dir = jobs_dir(Path::new(&self.cache_dir));
        std::fs::create_dir_all(&dir)?;
        let final_path = dir.join(format!("{}.json", self.id));
        let tmp_path = dir.join(format!("{}.json.tmp-{}", self.id, std::process::id()));
        std::fs::write(&tmp_path, self.to_json())?;
        std::fs::rename(&tmp_path, &final_path)?;
        obs_counters::jobs_manifests_written().incr();
        Ok(final_path)
    }

    /// Serialize as one flat JSON object (`None` fields omitted).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = vec![
            format!("\"id\":{}", crate::emit::json_str(&self.id)),
            format!("\"mode\":{}", crate::emit::json_str(self.mode.as_str())),
            format!("\"status\":{}", crate::emit::json_str(self.status.as_str())),
            format!("\"created_us\":{}", self.created_us),
            format!("\"model_version\":{}", crate::emit::json_str(&self.model_version)),
            format!("\"fingerprint\":{}", self.fingerprint),
            format!("\"spec_toml\":{}", crate::emit::json_str(&self.spec_toml)),
            format!("\"cache_dir\":{}", crate::emit::json_str(&self.cache_dir)),
            format!("\"total_points\":{}", self.total_points),
            format!("\"delivered\":{}", self.delivered),
        ];
        if let Some(v) = self.threads {
            fields.push(format!("\"threads\":{v}"));
        }
        if let Some(v) = self.workers {
            fields.push(format!("\"workers\":{v}"));
        }
        if let Some(v) = &self.csv {
            fields.push(format!("\"csv\":{}", crate::emit::json_str(v)));
        }
        if let Some(v) = &self.json_out {
            fields.push(format!("\"json_out\":{}", crate::emit::json_str(v)));
        }
        if let Some(v) = &self.search_strategy {
            fields.push(format!("\"search_strategy\":{}", crate::emit::json_str(v)));
        }
        if let Some(v) = self.budget {
            fields.push(format!("\"budget\":{v}"));
        }
        if let Some(v) = self.seed {
            fields.push(format!("\"seed\":{v}"));
        }
        if let Some(v) = self.max_area {
            fields.push(format!("\"max_area\":{v}"));
        }
        if let Some(v) = self.max_power {
            fields.push(format!("\"max_power\":{v}"));
        }
        if let Some(v) = self.min_speedup {
            fields.push(format!("\"min_speedup\":{v}"));
        }
        if self.map_search {
            fields.push("\"map_search\":1".to_string());
        }
        format!("{{{}}}\n", fields.join(","))
    }

    /// Parse a manifest back out of [`JobManifest::to_json`]'s output.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let fields = parse_flat_object(text)?;
        let str_field = |name: &str| -> Option<&str> {
            fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
                JsonValue::Str(s) => Some(s.as_str()),
                JsonValue::Num(_) => None,
            })
        };
        let num_field = |name: &str| -> Option<f64> {
            fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
                JsonValue::Num(n) => n.parse().ok(),
                JsonValue::Str(_) => None,
            })
        };
        // Integers parse as u64 directly — routing them through f64
        // would round anything above 2^53, and the model fingerprint
        // uses all 64 bits (a rounded fingerprint makes every resume
        // refuse with a phantom model mismatch).
        let int_field = |name: &str| -> Option<u64> {
            fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
                JsonValue::Num(n) => n.parse().ok(),
                JsonValue::Str(_) => None,
            })
        };
        let required_str = |name: &str| -> Result<String, String> {
            str_field(name).map(str::to_string).ok_or_else(|| format!("manifest: missing `{name}`"))
        };
        let required_num = |name: &str| -> Result<u64, String> {
            int_field(name).ok_or_else(|| format!("manifest: missing `{name}`"))
        };
        let mode_str = required_str("mode")?;
        let status_str = required_str("status")?;
        Ok(JobManifest {
            id: required_str("id")?,
            mode: JobMode::parse(&mode_str)
                .ok_or_else(|| format!("manifest: unknown mode `{mode_str}`"))?,
            status: JobStatus::parse(&status_str)
                .ok_or_else(|| format!("manifest: unknown status `{status_str}`"))?,
            created_us: required_num("created_us")?,
            model_version: required_str("model_version")?,
            fingerprint: required_num("fingerprint")?,
            spec_toml: required_str("spec_toml")?,
            cache_dir: required_str("cache_dir")?,
            total_points: required_num("total_points")? as usize,
            delivered: required_num("delivered")? as usize,
            threads: int_field("threads").map(|n| n as usize),
            workers: int_field("workers").map(|n| n as usize),
            csv: str_field("csv").map(str::to_string),
            json_out: str_field("json_out").map(str::to_string),
            search_strategy: str_field("search_strategy").map(str::to_string),
            budget: int_field("budget").map(|n| n as usize),
            seed: int_field("seed"),
            max_area: num_field("max_area"),
            max_power: num_field("max_power"),
            min_speedup: num_field("min_speedup"),
            map_search: int_field("map_search").map(|n| n != 0).unwrap_or(false),
        })
    }

    /// Load a manifest file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Resolve a `dse resume` operand: a path to a manifest file, or a
    /// job id looked up in `cache_dir`'s jobs dir.
    pub fn find(cache_dir: &Path, id_or_path: &str) -> Result<Self, String> {
        let direct = Path::new(id_or_path);
        if direct.is_file() {
            return Self::load(direct);
        }
        let in_jobs = jobs_dir(cache_dir).join(format!("{id_or_path}.json"));
        if in_jobs.is_file() {
            return Self::load(&in_jobs);
        }
        Err(format!(
            "no job `{id_or_path}` (looked for a file at that path and for {})",
            in_jobs.display()
        ))
    }

    /// Every manifest in `cache_dir`'s jobs dir, newest first. Files
    /// that fail to parse are skipped with a stderr note — one torn
    /// manifest must not hide the others.
    pub fn list(cache_dir: &Path) -> Vec<Self> {
        let Ok(entries) = std::fs::read_dir(jobs_dir(cache_dir)) else { return Vec::new() };
        let mut jobs: Vec<JobManifest> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("job-"))
            })
            .filter_map(|p| match Self::load(&p) {
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!("dse: skipping unreadable job manifest: {e}");
                    None
                }
            })
            .collect();
        jobs.sort_by(|a, b| b.created_us.cmp(&a.created_us).then(b.id.cmp(&a.id)));
        jobs
    }

    /// The newest resumable job in `cache_dir` — `Interrupted`, or
    /// `Running` with no trace of the process (a hard crash). What a
    /// bare `dse resume` picks.
    pub fn latest_resumable(cache_dir: &Path) -> Option<Self> {
        Self::list(cache_dir).into_iter().find(|m| m.status != JobStatus::Done)
    }
}

/// A parsed flat-JSON value: this format has only strings and numbers.
/// Numbers keep their raw token so integer fields can parse all 64
/// bits losslessly (floats parse from the same token on demand).
enum JsonValue {
    Str(String),
    Num(String),
}

/// Scan one flat JSON object (`{"k":v,...}`, string or number values,
/// no nesting) into key/value pairs. Tolerates surrounding whitespace;
/// rejects everything else loudly — a manifest is small enough that
/// "parse or refuse" beats recovering half a record.
fn parse_flat_object(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = text.trim().chars().peekable();
    if chars.next() != Some('{') {
        return Err("manifest: expected `{`".to_string());
    }
    let mut fields = Vec::new();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek() {
            Some('}') => break,
            Some('"') => {}
            other => return Err(format!("manifest: expected a key, got {other:?}")),
        }
        let key = parse_json_string(&mut chars)?;
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("manifest: missing `:` after `{key}`"));
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_json_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    num.push(chars.next().expect("peeked"));
                }
                if num.parse::<f64>().is_err() {
                    return Err(format!("manifest: bad number `{num}` for `{key}`"));
                }
                JsonValue::Num(num)
            }
            other => return Err(format!("manifest: bad value for `{key}`: {other:?}")),
        };
        fields.push((key, value));
    }
    Ok(fields)
}

/// Parse one JSON string literal (cursor on the opening quote),
/// undoing exactly the escapes [`crate::emit::json_str`] produces.
fn parse_json_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("manifest: expected `\"`".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("manifest: unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("manifest: bad \\u escape `{hex}`"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("manifest: bad codepoint \\u{hex}"))?,
                    );
                }
                other => return Err(format!("manifest: unknown escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobManifest {
        let spec = SweepSpec::quick();
        let mut m = JobManifest {
            // Constructed directly rather than via `new()` so the test
            // does not pay the model-fingerprint probe sweep.
            id: "job-1700000000000000-42".to_string(),
            mode: JobMode::Distrib,
            status: JobStatus::Interrupted,
            created_us: 1_700_000_000_000_000,
            model_version: crate::MODEL_VERSION.to_string(),
            // Uses all 64 bits and is not representable in f64 — pins
            // the lossless integer parse (a rounded fingerprint makes
            // every resume refuse with a phantom model mismatch).
            fingerprint: 0x360F_E8C2_230D_3F21,
            spec_toml: spec.to_toml(),
            cache_dir: ".dse-cache".to_string(),
            total_points: spec.point_count(),
            delivered: 7,
            threads: Some(4),
            workers: Some(2),
            csv: Some("out dir/points.csv".to_string()),
            json_out: None,
            search_strategy: None,
            budget: None,
            seed: Some(9),
            max_area: Some(3.5),
            max_power: None,
            min_speedup: None,
            map_search: true,
        };
        m.spec_toml.push_str("# trailing \"quoted\" comment\n");
        m
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let back = JobManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m, "every field survives, escapes included");
    }

    #[test]
    fn manifest_spec_round_trips_exactly() {
        let spec = SweepSpec::quick();
        let m = JobManifest { spec_toml: spec.to_toml(), ..sample() };
        let back = JobManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.spec().unwrap(), spec, "resume runs the exact spec");
    }

    #[test]
    fn save_load_find_and_latest_resumable() {
        let dir = std::env::temp_dir().join(format!("ng-dse-job-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut older = sample();
        older.cache_dir = dir.to_string_lossy().into_owned();
        older.save().unwrap();
        let mut newer = older.clone();
        newer.id = "job-1700000000000001-42".to_string();
        newer.created_us += 1;
        newer.save().unwrap();
        let mut done = newer.clone();
        done.id = "job-1700000000000002-42".to_string();
        done.created_us += 1;
        done.status = JobStatus::Done;
        done.save().unwrap();

        let found = JobManifest::find(&dir, &older.id).unwrap();
        assert_eq!(found, older);
        let listed = JobManifest::list(&dir);
        assert_eq!(listed.len(), 3);
        assert_eq!(listed[0].id, done.id, "newest first");
        // Done jobs are not resumable; the newest interrupted one wins.
        assert_eq!(JobManifest::latest_resumable(&dir).unwrap().id, newer.id);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifests_are_refused_not_half_read() {
        assert!(JobManifest::from_json("{\"id\":\"job-1\",\"mode\":\"sw").is_err());
        assert!(JobManifest::from_json("").is_err());
        assert!(JobManifest::from_json("{}").is_err(), "missing required fields");
    }
}
