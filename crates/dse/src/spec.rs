//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] is a set of axes; the sweep is their cartesian
//! product, enumerated in a fixed row-major order (apps outermost,
//! banks innermost) so that point indices — and therefore result files,
//! cache contents and reports — are stable for a given spec.

use ng_neural::apps::{AppKind, EncodingKind};
use ngpc::{EmulatorInput, NfpConfig};
use serde::{Deserialize, Serialize};

use crate::pareto::Constraints;

/// 1920x1080, the paper's evaluation resolution.
pub const FHD_PIXELS: u64 = 1920 * 1080;

/// 3840x2160.
pub const UHD_PIXELS: u64 = 3840 * 2160;

/// Error raised by spec parsing or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line of the TOML input could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The spec parsed but describes an unusable sweep.
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::Invalid(message) => write!(f, "invalid spec: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Short machine-readable name of an application (CSV/TOML vocabulary).
pub fn app_slug(app: AppKind) -> &'static str {
    match app {
        AppKind::Nerf => "nerf",
        AppKind::Nsdf => "nsdf",
        AppKind::Gia => "gia",
        AppKind::Nvr => "nvr",
    }
}

/// Parse an application slug (case-insensitive).
pub fn parse_app(s: &str) -> Option<AppKind> {
    match s.to_ascii_lowercase().as_str() {
        "nerf" => Some(AppKind::Nerf),
        "nsdf" => Some(AppKind::Nsdf),
        "gia" => Some(AppKind::Gia),
        "nvr" => Some(AppKind::Nvr),
        _ => None,
    }
}

/// Short machine-readable name of an encoding (CSV/TOML vocabulary).
pub fn encoding_slug(encoding: EncodingKind) -> &'static str {
    match encoding {
        EncodingKind::MultiResHashGrid => "hashgrid",
        EncodingKind::MultiResDenseGrid => "densegrid",
        EncodingKind::LowResDenseGrid => "lowres",
    }
}

/// Parse an encoding slug or paper abbreviation (case-insensitive).
pub fn parse_encoding(s: &str) -> Option<EncodingKind> {
    match s.to_ascii_lowercase().as_str() {
        "hashgrid" | "mrhg" => Some(EncodingKind::MultiResHashGrid),
        "densegrid" | "mrdg" => Some(EncodingKind::MultiResDenseGrid),
        "lowres" | "lrdg" => Some(EncodingKind::LowResDenseGrid),
        _ => None,
    }
}

/// One concrete configuration drawn from a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Position in the spec's deterministic enumeration order.
    pub index: usize,
    /// Application under evaluation.
    pub app: AppKind,
    /// Input-encoding scheme.
    pub encoding: EncodingKind,
    /// Frame resolution in pixels.
    pub pixels: u64,
    /// NFP count (the paper's scaling factor).
    pub nfp_units: u32,
    /// NFP clock in GHz.
    pub clock_ghz: f64,
    /// Grid SRAM per encoding engine in KiB.
    pub grid_sram_kb: u32,
    /// Banks per grid SRAM.
    pub grid_sram_banks: u32,
    /// Input-encoding engines per NFP.
    pub encoding_engines: u32,
    /// MAC array rows of the MLP engine.
    pub mac_rows: u32,
    /// MAC array columns of the MLP engine.
    pub mac_cols: u32,
    /// Query lanes per encoding engine.
    pub lanes_per_engine: u32,
    /// Fusion input-FIFO depth in entries.
    pub input_fifo_depth: u32,
}

/// Hashable identity of the architecture axes of a [`DesignPoint`]
/// (everything except the app).
pub type ArchKey = (EncodingKind, u64, u32, u64, u32, u32, u32, u32, u32, u32, u32);

impl DesignPoint {
    /// The emulator input for this point.
    pub fn emulator_input(&self) -> EmulatorInput {
        EmulatorInput::builder()
            .app(self.app)
            .encoding(self.encoding)
            .pixels(self.pixels)
            .nfp_units(self.nfp_units)
            .clock_ghz(self.clock_ghz)
            .grid_sram_bytes(self.grid_sram_kb as usize * 1024)
            .grid_sram_banks(self.grid_sram_banks)
            .encoding_engines(self.encoding_engines)
            .mac_rows(self.mac_rows)
            .mac_cols(self.mac_cols)
            .lanes_per_engine(self.lanes_per_engine)
            .input_fifo_depth(self.input_fifo_depth)
            .build()
    }

    /// Hashable identity of the *architecture* axes (everything except
    /// the app), used to group points for cross-app averaging.
    pub fn arch_key(&self) -> ArchKey {
        (
            self.encoding,
            self.pixels,
            self.nfp_units,
            self.clock_ghz.to_bits(),
            self.grid_sram_kb,
            self.grid_sram_banks,
            self.encoding_engines,
            self.mac_rows,
            self.mac_cols,
            self.lanes_per_engine,
            self.input_fifo_depth,
        )
    }
}

/// A declarative design-space sweep: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable sweep name (reported, not part of the cache key).
    pub name: String,
    /// Applications to evaluate.
    pub apps: Vec<AppKind>,
    /// Input encodings to evaluate.
    pub encodings: Vec<EncodingKind>,
    /// Frame resolutions in pixels.
    pub pixels: Vec<u64>,
    /// NFP counts.
    pub nfp_units: Vec<u32>,
    /// NFP clocks in GHz.
    pub clock_ghz: Vec<f64>,
    /// Grid SRAM sizes per encoding engine, in KiB.
    pub grid_sram_kb: Vec<u32>,
    /// Grid SRAM bank counts (powers of two).
    pub grid_sram_banks: Vec<u32>,
    /// Input-encoding engine counts per NFP.
    pub encoding_engines: Vec<u32>,
    /// MAC array row counts of the MLP engine.
    pub mac_rows: Vec<u32>,
    /// MAC array column counts of the MLP engine.
    pub mac_cols: Vec<u32>,
    /// Query-lane counts per encoding engine.
    pub lanes_per_engine: Vec<u32>,
    /// Fusion input-FIFO depths in entries.
    pub input_fifo_depth: Vec<u32>,
    /// Default reporting constraints (not part of the cache key: the
    /// full sweep is always evaluated and cached; constraints filter).
    pub constraints: Constraints,
}

impl Default for SweepSpec {
    /// All four apps, hashgrid, FHD, the paper's scaling factors, and
    /// the paper's NFP everywhere else.
    fn default() -> Self {
        SweepSpec {
            name: "custom".to_string(),
            apps: AppKind::ALL.to_vec(),
            encodings: vec![EncodingKind::MultiResHashGrid],
            pixels: vec![FHD_PIXELS],
            nfp_units: ngpc::NgpcConfig::SCALING_FACTORS.to_vec(),
            clock_ghz: vec![1.0],
            grid_sram_kb: vec![1024],
            grid_sram_banks: vec![8],
            encoding_engines: vec![16],
            mac_rows: vec![64],
            mac_cols: vec![64],
            lanes_per_engine: vec![1],
            input_fifo_depth: vec![64],
            constraints: Constraints::default(),
        }
    }
}

impl SweepSpec {
    /// The flagship preset: every app and encoding, NFP counts from 4
    /// to 128, and the SRAM sizing/banking trade-off around the paper's
    /// 1 MB / 8-bank design point — 1440 configurations containing all
    /// of the paper's published ones (clock pinned at the paper's
    /// 1 GHz).
    pub fn paper() -> Self {
        SweepSpec {
            name: "paper".to_string(),
            encodings: EncodingKind::ALL.to_vec(),
            nfp_units: vec![4, 8, 12, 16, 24, 32, 48, 64, 96, 128],
            grid_sram_kb: vec![256, 512, 1024, 2048],
            grid_sram_banks: vec![2, 4, 8],
            ..SweepSpec::default()
        }
    }

    /// A 16-point smoke sweep: the paper's Fig. 12-a hashgrid column.
    pub fn quick() -> Self {
        SweepSpec { name: "quick".to_string(), ..SweepSpec::default() }
    }

    /// Clock-frequency sensitivity around the paper's 1 GHz NFP.
    pub fn clocks() -> Self {
        SweepSpec {
            name: "clocks".to_string(),
            encodings: EncodingKind::ALL.to_vec(),
            nfp_units: vec![8, 16, 32, 64],
            clock_ghz: vec![0.5, 0.75, 1.0, 1.25, 1.5, 2.0],
            ..SweepSpec::default()
        }
    }

    /// Resolution scaling: FHD to 8K at the paper's scaling factors.
    pub fn resolutions() -> Self {
        SweepSpec {
            name: "resolutions".to_string(),
            pixels: vec![1280 * 720, FHD_PIXELS, 2560 * 1440, UHD_PIXELS, 7680 * 4320],
            nfp_units: vec![8, 16, 32, 64, 128],
            ..SweepSpec::default()
        }
    }

    /// The NFP-microarchitecture preset: MAC arrays from 32x32 to
    /// 128x128 crossed with 8/16/32 encoding engines at the paper's
    /// scaling factors — the axes the compositional timing model opened
    /// up. Contains the paper's 64x64 / 16-engine NFP at every unit
    /// count.
    pub fn mac_arrays() -> Self {
        SweepSpec {
            name: "mac-arrays".to_string(),
            encoding_engines: vec![8, 16, 32],
            mac_rows: vec![32, 64, 128],
            mac_cols: vec![32, 64, 128],
            ..SweepSpec::default()
        }
    }

    /// The exploded 11-arch-axis space behind the guided searcher: the
    /// paper preset's axes crossed with the NFP-microarchitecture axes
    /// *and* the query-lane / input-FIFO axes — ~260k points, ~180x the
    /// paper preset and far past what an interactive exhaustive sweep
    /// wants to pay.
    ///
    /// Two axis choices keep the paper's NGPC-64 *organisation*
    /// recoverable from the exploded frontier (the CI win condition):
    /// the FIFO axis samples below the overlap knee (2, 8) plus the
    /// paper's 64 — depths in `[16, 64)` match the paper's full stage
    /// overlap at strictly less FIFO area everywhere and would evict
    /// the 64-entry design by construction — and the SRAM axis stops at
    /// the paper's 1 MB: with 2 MB SRAMs, 8 engines serving 2 level
    /// tables each match 16-engine throughput (the MLP stage is the
    /// bottleneck) at less area, which would evict every 16-engine
    /// organisation from the 64-unit frontier. The 2 MB sizing study
    /// stays covered by the `paper` preset.
    pub fn guided_lanes() -> Self {
        SweepSpec {
            name: "guided-lanes".to_string(),
            encodings: EncodingKind::ALL.to_vec(),
            nfp_units: vec![4, 8, 12, 16, 24, 32, 48, 64, 96, 128],
            grid_sram_kb: vec![256, 512, 1024],
            grid_sram_banks: vec![2, 4, 8],
            encoding_engines: vec![8, 16, 32],
            mac_rows: vec![32, 64, 128],
            mac_cols: vec![32, 64, 128],
            lanes_per_engine: vec![1, 2, 4],
            input_fifo_depth: vec![2, 8, 64],
            ..SweepSpec::default()
        }
    }

    /// Look up a named preset.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(Self::paper()),
            "quick" => Some(Self::quick()),
            "clocks" => Some(Self::clocks()),
            "resolutions" => Some(Self::resolutions()),
            "mac-arrays" => Some(Self::mac_arrays()),
            "guided-lanes" => Some(Self::guided_lanes()),
            _ => None,
        }
    }

    /// Names accepted by [`SweepSpec::preset`].
    pub const PRESETS: [&'static str; 6] =
        ["paper", "quick", "clocks", "resolutions", "mac-arrays", "guided-lanes"];

    /// Number of points in the sweep.
    pub fn point_count(&self) -> usize {
        self.apps.len()
            * self.encodings.len()
            * self.pixels.len()
            * self.nfp_units.len()
            * self.clock_ghz.len()
            * self.grid_sram_kb.len()
            * self.grid_sram_banks.len()
            * self.encoding_engines.len()
            * self.mac_rows.len()
            * self.mac_cols.len()
            * self.lanes_per_engine.len()
            * self.input_fifo_depth.len()
    }

    /// Check the sweep is non-empty and every axis value is one the
    /// emulator accepts.
    pub fn validate(&self) -> Result<(), SpecError> {
        let axes: [(&str, bool); 12] = [
            ("apps", self.apps.is_empty()),
            ("encodings", self.encodings.is_empty()),
            ("pixels", self.pixels.is_empty()),
            ("nfp_units", self.nfp_units.is_empty()),
            ("clock_ghz", self.clock_ghz.is_empty()),
            ("grid_sram_kb", self.grid_sram_kb.is_empty()),
            ("grid_sram_banks", self.grid_sram_banks.is_empty()),
            ("encoding_engines", self.encoding_engines.is_empty()),
            ("mac_rows", self.mac_rows.is_empty()),
            ("mac_cols", self.mac_cols.is_empty()),
            ("lanes_per_engine", self.lanes_per_engine.is_empty()),
            ("input_fifo_depth", self.input_fifo_depth.is_empty()),
        ];
        for (name, empty) in axes {
            if empty {
                return Err(SpecError::Invalid(format!("axis `{name}` is empty")));
            }
        }
        // Duplicate axis values would double-weight cross-app averages
        // (and duplicate frontier rows), so reject them outright.
        fn unique<T, K: Ord>(
            name: &str,
            values: &[T],
            key: impl Fn(&T) -> K,
        ) -> Result<(), SpecError> {
            let mut keys: Vec<K> = values.iter().map(key).collect();
            keys.sort_unstable();
            if keys.windows(2).any(|w| w[0] == w[1]) {
                return Err(SpecError::Invalid(format!("axis `{name}` has duplicate values")));
            }
            Ok(())
        }
        unique("apps", &self.apps, |&a| a as u8)?;
        unique("encodings", &self.encodings, |&e| e as u8)?;
        unique("pixels", &self.pixels, |&p| p)?;
        unique("nfp_units", &self.nfp_units, |&n| n)?;
        unique("clock_ghz", &self.clock_ghz, |&c| c.to_bits())?;
        unique("grid_sram_kb", &self.grid_sram_kb, |&k| k)?;
        unique("grid_sram_banks", &self.grid_sram_banks, |&b| b)?;
        unique("encoding_engines", &self.encoding_engines, |&e| e)?;
        unique("mac_rows", &self.mac_rows, |&r| r)?;
        unique("mac_cols", &self.mac_cols, |&c| c)?;
        unique("lanes_per_engine", &self.lanes_per_engine, |&l| l)?;
        unique("input_fifo_depth", &self.input_fifo_depth, |&d| d)?;
        // Upper bound well past 16K-per-eye but far from the u64
        // overflow of downstream `pixels * samples` workload math.
        const MAX_PIXELS: u64 = 1 << 33;
        for &px in &self.pixels {
            if px == 0 || px > MAX_PIXELS {
                return Err(SpecError::Invalid(format!(
                    "pixels must be in 1..={MAX_PIXELS}, got {px}"
                )));
            }
        }
        for &n in &self.nfp_units {
            if n == 0 || n > 1024 {
                return Err(SpecError::Invalid(format!("nfp_units {n} outside 1..=1024")));
            }
        }
        // Degenerate NFP-microarchitecture values get spec-level errors
        // (a sweep must fail fast, not panic mid-evaluation). The
        // bounds mirror `NfpConfig::validate`.
        for &e in &self.encoding_engines {
            if e == 0 || e > 64 {
                return Err(SpecError::Invalid(format!("encoding_engines {e} outside 1..=64")));
            }
        }
        for &r in &self.mac_rows {
            if r == 0 || r > 1024 {
                return Err(SpecError::Invalid(format!("mac_rows {r} outside 1..=1024")));
            }
        }
        for &c in &self.mac_cols {
            if c == 0 || c > 1024 {
                return Err(SpecError::Invalid(format!("mac_cols {c} outside 1..=1024")));
            }
        }
        for &l in &self.lanes_per_engine {
            if l == 0 || l > 16 {
                return Err(SpecError::Invalid(format!("lanes_per_engine {l} outside 1..=16")));
            }
        }
        for &d in &self.input_fifo_depth {
            if d == 0 || d > 4096 {
                return Err(SpecError::Invalid(format!("input_fifo_depth {d} outside 1..=4096")));
            }
        }
        // One emulator-level validation per NFP-axis combination; the
        // product of the three swept NFP axes is small by construction.
        for &clock in &self.clock_ghz {
            for &kb in &self.grid_sram_kb {
                for &banks in &self.grid_sram_banks {
                    let nfp = NfpConfig {
                        clock_ghz: clock,
                        grid_sram_bytes: kb as usize * 1024,
                        grid_sram_banks: banks,
                        ..NfpConfig::default()
                    };
                    nfp.validate().map_err(|e| SpecError::Invalid(e.to_string()))?;
                }
            }
        }
        Ok(())
    }

    /// Expand the cartesian product in deterministic order.
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::with_capacity(self.point_count());
        let mut index = 0;
        for &app in &self.apps {
            for &encoding in &self.encodings {
                for &pixels in &self.pixels {
                    for &nfp_units in &self.nfp_units {
                        for &clock_ghz in &self.clock_ghz {
                            for &grid_sram_kb in &self.grid_sram_kb {
                                for &grid_sram_banks in &self.grid_sram_banks {
                                    for &encoding_engines in &self.encoding_engines {
                                        for &mac_rows in &self.mac_rows {
                                            for &mac_cols in &self.mac_cols {
                                                for &lanes in &self.lanes_per_engine {
                                                    for &fifo in &self.input_fifo_depth {
                                                        out.push(DesignPoint {
                                                            index,
                                                            app,
                                                            encoding,
                                                            pixels,
                                                            nfp_units,
                                                            clock_ghz,
                                                            grid_sram_kb,
                                                            grid_sram_banks,
                                                            encoding_engines,
                                                            mac_rows,
                                                            mac_cols,
                                                            lanes_per_engine: lanes,
                                                            input_fifo_depth: fifo,
                                                        });
                                                        index += 1;
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Stable text encoding of the evaluated axes (not the name or the
    /// constraints) — the content that determines evaluation results,
    /// hashed into the cache key.
    pub fn canonical(&self) -> String {
        let join = |it: Vec<String>| it.join(",");
        format!(
            "apps=[{}];encodings=[{}];pixels=[{}];nfp_units=[{}];clock_ghz=[{}];grid_sram_kb=[{}];grid_sram_banks=[{}];encoding_engines=[{}];mac_rows=[{}];mac_cols=[{}];lanes_per_engine=[{}];input_fifo_depth=[{}]",
            join(self.apps.iter().map(|&a| app_slug(a).to_string()).collect()),
            join(self.encodings.iter().map(|&e| encoding_slug(e).to_string()).collect()),
            join(self.pixels.iter().map(|p| p.to_string()).collect()),
            join(self.nfp_units.iter().map(|n| n.to_string()).collect()),
            join(self.clock_ghz.iter().map(|c| format!("{:016x}", c.to_bits())).collect()),
            join(self.grid_sram_kb.iter().map(|k| k.to_string()).collect()),
            join(self.grid_sram_banks.iter().map(|b| b.to_string()).collect()),
            join(self.encoding_engines.iter().map(|e| e.to_string()).collect()),
            join(self.mac_rows.iter().map(|r| r.to_string()).collect()),
            join(self.mac_cols.iter().map(|c| c.to_string()).collect()),
            join(self.lanes_per_engine.iter().map(|l| l.to_string()).collect()),
            join(self.input_fifo_depth.iter().map(|d| d.to_string()).collect()),
        )
    }

    /// Render this spec in the TOML subset [`SweepSpec::from_toml_str`]
    /// parses, round-tripping every axis exactly (floats via
    /// shortest-round-trip display). This is how the distributed
    /// coordinator ships its *resolved* spec — preset plus any CLI axis
    /// overrides — to worker processes, so a worker's enumeration is
    /// guaranteed to be the coordinator's.
    pub fn to_toml(&self) -> String {
        let nums = |it: &mut dyn Iterator<Item = String>| -> String {
            format!("[{}]", it.collect::<Vec<_>>().join(", "))
        };
        // The TOML subset has no string escapes, so characters that
        // would break the quoting are replaced: the name is reporting
        // metadata (never part of the cache identity), so a sanitised
        // round trip beats an unparseable spec file.
        let name: String = self
            .name
            .chars()
            .map(|c| if c == '"' || c == '\\' || c.is_control() { '_' } else { c })
            .collect();
        let mut out = format!("name = \"{name}\"\n");
        out.push_str(&format!(
            "apps = {}\n",
            nums(&mut self.apps.iter().map(|&a| format!("\"{}\"", app_slug(a))))
        ));
        out.push_str(&format!(
            "encodings = {}\n",
            nums(&mut self.encodings.iter().map(|&e| format!("\"{}\"", encoding_slug(e))))
        ));
        out.push_str(&format!(
            "pixels = {}\n",
            nums(&mut self.pixels.iter().map(|p| p.to_string()))
        ));
        out.push_str(&format!(
            "nfp_units = {}\n",
            nums(&mut self.nfp_units.iter().map(|n| n.to_string()))
        ));
        out.push_str(&format!(
            "clock_ghz = {}\n",
            nums(&mut self.clock_ghz.iter().map(|c| c.to_string()))
        ));
        out.push_str(&format!(
            "grid_sram_kb = {}\n",
            nums(&mut self.grid_sram_kb.iter().map(|k| k.to_string()))
        ));
        out.push_str(&format!(
            "grid_sram_banks = {}\n",
            nums(&mut self.grid_sram_banks.iter().map(|b| b.to_string()))
        ));
        out.push_str(&format!(
            "encoding_engines = {}\n",
            nums(&mut self.encoding_engines.iter().map(|e| e.to_string()))
        ));
        out.push_str(&format!(
            "mac_rows = {}\n",
            nums(&mut self.mac_rows.iter().map(|r| r.to_string()))
        ));
        out.push_str(&format!(
            "mac_cols = {}\n",
            nums(&mut self.mac_cols.iter().map(|c| c.to_string()))
        ));
        out.push_str(&format!(
            "lanes_per_engine = {}\n",
            nums(&mut self.lanes_per_engine.iter().map(|l| l.to_string()))
        ));
        out.push_str(&format!(
            "input_fifo_depth = {}\n",
            nums(&mut self.input_fifo_depth.iter().map(|d| d.to_string()))
        ));
        let c = &self.constraints;
        if c.max_area_pct.is_some() || c.max_power_pct.is_some() || c.min_speedup.is_some() {
            out.push_str("\n[constraints]\n");
            if let Some(b) = c.max_area_pct {
                out.push_str(&format!("max_area_pct = {b}\n"));
            }
            if let Some(b) = c.max_power_pct {
                out.push_str(&format!("max_power_pct = {b}\n"));
            }
            if let Some(b) = c.min_speedup {
                out.push_str(&format!("min_speedup = {b}\n"));
            }
        }
        out
    }

    /// Parse a spec from the TOML subset documented in the README:
    /// top-level `key = value` pairs (value: number, `"string"`, or a
    /// single-line array of either) plus an optional `[constraints]`
    /// table. Unspecified axes keep [`SweepSpec::default`] values.
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        let mut spec = SweepSpec::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "constraints" {
                    return Err(SpecError::Parse {
                        line: lineno,
                        message: format!("unknown table `[{section}]`"),
                    });
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(SpecError::Parse {
                line: lineno,
                message: "expected `key = value`".to_string(),
            })?;
            let key = key.trim();
            let value = parse_value(value.trim())
                .map_err(|message| SpecError::Parse { line: lineno, message })?;
            apply_key(&mut spec, &section, key, value)
                .map_err(|message| SpecError::Parse { line: lineno, message })?;
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// A parsed TOML value (subset: scalars and flat arrays).
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Number(f64),
    Text(String),
    Array(Vec<TomlValue>),
}

/// Strip a `#` comment, respecting (simple, escape-free) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str) -> Result<TomlValue, String> {
    let s = s.trim();
    if let Some(stripped) = s.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or(format!("unterminated string: {s}"))?;
        return Ok(TomlValue::Text(inner.to_string()));
    }
    s.parse::<f64>().map(TomlValue::Number).map_err(|_| format!("not a number: `{s}`"))
}

fn parse_value(s: &str) -> Result<TomlValue, String> {
    if let Some(body) = s.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("array must close on the same line")?;
        let body = body.trim();
        if body.is_empty() {
            return Ok(TomlValue::Array(Vec::new()));
        }
        return body
            .split(',')
            .filter(|part| !part.trim().is_empty()) // tolerate trailing comma
            .map(parse_scalar)
            .collect::<Result<Vec<_>, _>>()
            .map(TomlValue::Array);
    }
    parse_scalar(s)
}

/// Coerce a scalar-or-array value into a vector of items parsed by `f`.
fn coerce_vec<T>(
    value: TomlValue,
    f: impl Fn(&TomlValue) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    match value {
        TomlValue::Array(items) => items.iter().map(&f).collect(),
        scalar => Ok(vec![f(&scalar)?]),
    }
}

fn as_number(v: &TomlValue) -> Result<f64, String> {
    match v {
        TomlValue::Number(n) => Ok(*n),
        other => Err(format!("expected a number, got {other:?}")),
    }
}

fn as_integer(v: &TomlValue, what: &str) -> Result<u64, String> {
    let n = as_number(v)?;
    if n.fract() != 0.0 || n < 0.0 || n > u64::MAX as f64 {
        return Err(format!("{what} must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

fn as_u32(v: &TomlValue, what: &str) -> Result<u32, String> {
    u32::try_from(as_integer(v, what)?).map_err(|_| format!("{what} must fit in 32 bits"))
}

fn as_text(v: &TomlValue) -> Result<&str, String> {
    match v {
        TomlValue::Text(s) => Ok(s),
        other => Err(format!("expected a string, got {other:?}")),
    }
}

fn apply_key(
    spec: &mut SweepSpec,
    section: &str,
    key: &str,
    value: TomlValue,
) -> Result<(), String> {
    if section == "constraints" {
        let bound = Some(as_number(&value)?);
        match key {
            "max_area_pct" => spec.constraints.max_area_pct = bound,
            "max_power_pct" => spec.constraints.max_power_pct = bound,
            "min_speedup" => spec.constraints.min_speedup = bound,
            _ => return Err(format!("unknown constraint `{key}`")),
        }
        return Ok(());
    }
    match key {
        "name" => spec.name = as_text(&value)?.to_string(),
        "apps" => {
            spec.apps = coerce_vec(value, |v| {
                let s = as_text(v)?;
                parse_app(s).ok_or(format!("unknown app `{s}` (nerf/nsdf/gia/nvr)"))
            })?
        }
        "encodings" => {
            spec.encodings = coerce_vec(value, |v| {
                let s = as_text(v)?;
                parse_encoding(s)
                    .ok_or(format!("unknown encoding `{s}` (hashgrid/densegrid/lowres)"))
            })?
        }
        "pixels" => spec.pixels = coerce_vec(value, |v| as_integer(v, "pixels"))?,
        "nfp_units" => spec.nfp_units = coerce_vec(value, |v| as_u32(v, "nfp_units"))?,
        "clock_ghz" => spec.clock_ghz = coerce_vec(value, as_number)?,
        "grid_sram_kb" => spec.grid_sram_kb = coerce_vec(value, |v| as_u32(v, "grid_sram_kb"))?,
        "grid_sram_banks" => {
            spec.grid_sram_banks = coerce_vec(value, |v| as_u32(v, "grid_sram_banks"))?
        }
        "encoding_engines" => {
            spec.encoding_engines = coerce_vec(value, |v| as_u32(v, "encoding_engines"))?
        }
        "mac_rows" => spec.mac_rows = coerce_vec(value, |v| as_u32(v, "mac_rows"))?,
        "mac_cols" => spec.mac_cols = coerce_vec(value, |v| as_u32(v, "mac_cols"))?,
        "lanes_per_engine" => {
            spec.lanes_per_engine = coerce_vec(value, |v| as_u32(v, "lanes_per_engine"))?
        }
        "input_fifo_depth" => {
            spec.input_fifo_depth = coerce_vec(value, |v| as_u32(v, "input_fifo_depth"))?
        }
        _ => return Err(format!("unknown key `{key}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_covers_the_papers_points() {
        let spec = SweepSpec::paper();
        spec.validate().unwrap();
        assert!(spec.point_count() >= 500, "{}", spec.point_count());
        assert_eq!(spec.point_count(), spec.points().len());
        assert_eq!(spec.apps, AppKind::ALL.to_vec());
        // The NGPC-64 headline configuration is one of the points.
        let headline = spec.points().into_iter().find(|p| {
            p.app == AppKind::Nerf
                && p.encoding == EncodingKind::MultiResHashGrid
                && p.nfp_units == 64
                && p.clock_ghz == 1.0
                && p.grid_sram_kb == 1024
                && p.grid_sram_banks == 8
        });
        assert!(headline.is_some());
    }

    #[test]
    fn points_are_indexed_in_order() {
        let points = SweepSpec::quick().points();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn design_point_maps_onto_emulator_input() {
        let p = DesignPoint {
            index: 0,
            app: AppKind::Gia,
            encoding: EncodingKind::LowResDenseGrid,
            pixels: UHD_PIXELS,
            nfp_units: 32,
            clock_ghz: 1.5,
            grid_sram_kb: 512,
            grid_sram_banks: 4,
            encoding_engines: 8,
            mac_rows: 32,
            mac_cols: 128,
            lanes_per_engine: 2,
            input_fifo_depth: 32,
        };
        let input = p.emulator_input();
        assert_eq!(input.app, AppKind::Gia);
        assert_eq!(input.pixels, UHD_PIXELS);
        assert_eq!(input.nfp.grid_sram_bytes, 512 * 1024);
        assert_eq!(input.nfp.grid_sram_banks, 4);
        assert_eq!(input.nfp.clock_ghz, 1.5);
        assert_eq!(input.nfp.encoding_engines, 8);
        assert_eq!(input.nfp.mac_rows, 32);
        assert_eq!(input.nfp.mac_cols, 128);
        assert_eq!(input.nfp.lanes_per_engine, 2);
        assert_eq!(input.nfp.input_fifo_depth, 32);
    }

    #[test]
    fn canonical_ignores_name_and_constraints() {
        let a = SweepSpec::quick();
        let mut b = a.clone();
        b.name = "renamed".to_string();
        b.constraints.max_area_pct = Some(3.0);
        assert_eq!(a.canonical(), b.canonical());
        let mut c = a.clone();
        c.nfp_units.push(128);
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn toml_round_trip() {
        let text = r#"
            # sweep for the area-budget study
            name = "budget"
            apps = ["nerf", "gia"]
            encodings = ["hashgrid"]
            nfp_units = [8, 16, 32, 64]
            clock_ghz = [0.5, 1.0]
            grid_sram_kb = [512, 1024]
            grid_sram_banks = 8

            [constraints]
            max_area_pct = 3.0   # stay under 3% of the die
            min_speedup = 2.0
        "#;
        let spec = SweepSpec::from_toml_str(text).unwrap();
        assert_eq!(spec.name, "budget");
        assert_eq!(spec.apps, vec![AppKind::Nerf, AppKind::Gia]);
        assert_eq!(spec.nfp_units, vec![8, 16, 32, 64]);
        assert_eq!(spec.clock_ghz, vec![0.5, 1.0]);
        assert_eq!(spec.grid_sram_banks, vec![8]);
        assert_eq!(spec.constraints.max_area_pct, Some(3.0));
        assert_eq!(spec.constraints.min_speedup, Some(2.0));
        assert_eq!(spec.constraints.max_power_pct, None);
        // Unspecified axes keep defaults.
        assert_eq!(spec.pixels, vec![FHD_PIXELS]);
        // 2 apps x 4 nfp_units x 2 clocks x 2 srams, single everything else.
        assert_eq!(spec.point_count(), 2 * 4 * 2 * 2);
    }

    #[test]
    fn to_toml_round_trips_every_preset_exactly() {
        // The distributed coordinator ships its resolved spec through
        // this encoding; a worker must re-enumerate the exact points.
        for name in SweepSpec::PRESETS {
            let spec = SweepSpec::preset(name).unwrap();
            let parsed = SweepSpec::from_toml_str(&spec.to_toml()).unwrap();
            assert_eq!(parsed, spec, "{name}");
            assert_eq!(parsed.canonical(), spec.canonical(), "{name}");
        }
        // Overridden axes (incl. non-integer clocks) and constraints
        // survive the trip too.
        let mut spec = SweepSpec::quick();
        spec.name = "overridden".to_string();
        spec.clock_ghz = vec![0.75, 1.0, 1.25];
        spec.lanes_per_engine = vec![1, 4];
        spec.constraints.max_area_pct = Some(3.5);
        let parsed = SweepSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(parsed, spec);
        // A name the quote-free TOML subset cannot carry is sanitised
        // (name is reporting metadata, never cache identity) — the
        // emitted file must stay parseable no matter what.
        let mut hostile = SweepSpec::quick();
        hostile.name = "abl \"v2\"\\\n".to_string();
        let parsed = SweepSpec::from_toml_str(&hostile.to_toml()).unwrap();
        assert_eq!(parsed.name, "abl _v2___");
        assert_eq!(parsed.canonical(), hostile.canonical());
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let err = SweepSpec::from_toml_str("apps = [\"nerf\"]\nbogus = 3\n").unwrap_err();
        assert_eq!(err, SpecError::Parse { line: 2, message: "unknown key `bogus`".to_string() });
        let err = SweepSpec::from_toml_str("apps = [\"quake\"]").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }), "{err}");
        let err = SweepSpec::from_toml_str("[weird]\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let mut spec = SweepSpec::quick();
        spec.nfp_units.clear();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        let mut spec = SweepSpec::quick();
        spec.grid_sram_banks = vec![3];
        assert!(spec.validate().is_err(), "non-power-of-two banks");
        let mut spec = SweepSpec::quick();
        spec.clock_ghz = vec![99.0];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick();
        spec.pixels = vec![2_000_000_000_000_000_000];
        assert!(spec.validate().is_err(), "pixels beyond the workload-math overflow bound");
        let mut spec = SweepSpec::quick();
        spec.pixels = vec![0];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn mac_arrays_preset_spans_the_new_axes() {
        let spec = SweepSpec::mac_arrays();
        spec.validate().unwrap();
        assert_eq!(spec.encoding_engines, vec![8, 16, 32]);
        assert_eq!(spec.mac_rows, vec![32, 64, 128]);
        assert_eq!(spec.mac_cols, vec![32, 64, 128]);
        // 4 apps x 4 unit counts x 3 engines x 3 rows x 3 cols.
        assert_eq!(spec.point_count(), 4 * 4 * 3 * 3 * 3);
        // The paper's NFP is one of the points at every unit count.
        let paper_points = spec
            .points()
            .into_iter()
            .filter(|p| p.encoding_engines == 16 && p.mac_rows == 64 && p.mac_cols == 64)
            .count();
        assert_eq!(paper_points, 4 * 4);
    }

    #[test]
    fn validation_rejects_degenerate_engine_and_mac_axes() {
        // Each degenerate value must fail at the spec layer with its
        // own message, not panic mid-sweep.
        type Mutator = fn(&mut SweepSpec);
        let cases: [(&str, Mutator, &str); 6] = [
            ("zero engines", |s| s.encoding_engines = vec![0], "encoding_engines 0 outside 1..=64"),
            (
                "huge engines",
                |s| s.encoding_engines = vec![128],
                "encoding_engines 128 outside 1..=64",
            ),
            ("zero mac_rows", |s| s.mac_rows = vec![0], "mac_rows 0 outside 1..=1024"),
            ("huge mac_rows", |s| s.mac_rows = vec![2048], "mac_rows 2048 outside 1..=1024"),
            ("zero mac_cols", |s| s.mac_cols = vec![0], "mac_cols 0 outside 1..=1024"),
            ("huge mac_cols", |s| s.mac_cols = vec![4096], "mac_cols 4096 outside 1..=1024"),
        ];
        for (what, mutate, message) in cases {
            let mut spec = SweepSpec::quick();
            mutate(&mut spec);
            match spec.validate() {
                Err(SpecError::Invalid(m)) => assert_eq!(m, message, "{what}"),
                other => panic!("{what}: expected Invalid, got {other:?}"),
            }
        }
        // Empty axes are rejected like every other axis.
        let mut spec = SweepSpec::quick();
        spec.mac_rows.clear();
        assert_eq!(
            spec.validate(),
            Err(SpecError::Invalid("axis `mac_rows` is empty".to_string()))
        );
    }

    #[test]
    fn toml_parses_the_new_axes() {
        let spec = SweepSpec::from_toml_str(
            "encoding_engines = [8, 16]\nmac_rows = [32, 64]\nmac_cols = 64\n",
        )
        .unwrap();
        assert_eq!(spec.encoding_engines, vec![8, 16]);
        assert_eq!(spec.mac_rows, vec![32, 64]);
        assert_eq!(spec.mac_cols, vec![64]);
        assert_eq!(spec.point_count(), 4 * 4 * 2 * 2);
        let err = SweepSpec::from_toml_str("mac_rows = [0]\n").unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)), "{err}");
    }

    #[test]
    fn guided_lanes_preset_spans_the_full_space() {
        let spec = SweepSpec::guided_lanes();
        spec.validate().unwrap();
        // 1080 points of the paper axes (sans the 2 MB SRAM point) x
        // 3 engines x 3 rows x 3 cols x 3 lanes x 3 fifos = 262,440 —
        // the exploded space of the ISSUE.
        assert_eq!(spec.point_count(), 1080 * 243);
        assert_eq!(spec.grid_sram_kb, vec![256, 512, 1024]);
        assert_eq!(spec.lanes_per_engine, vec![1, 2, 4]);
        assert_eq!(spec.input_fifo_depth, vec![2, 8, 64]);
        // The FIFO axis must not sample [16, 64): those depths match the
        // paper's overlap at strictly less area and would evict the
        // NGPC-64 headline point from the frontier by construction.
        assert!(spec.input_fifo_depth.iter().all(|&d| !(16..64).contains(&d)));
        // The paper's NFP (lanes 1, 64-deep FIFO) is in the space.
        let headline = spec.points().into_iter().find(|p| {
            p.nfp_units == 64
                && p.encoding_engines == 16
                && p.mac_rows == 64
                && p.mac_cols == 64
                && p.lanes_per_engine == 1
                && p.input_fifo_depth == 64
        });
        assert!(headline.is_some());
    }

    #[test]
    fn validation_rejects_degenerate_lane_and_fifo_axes() {
        // Spec-level errors, not mid-sweep panics, for the new axes.
        type Mutator = fn(&mut SweepSpec);
        let cases: [(&str, Mutator, &str); 4] = [
            ("zero lanes", |s| s.lanes_per_engine = vec![0], "lanes_per_engine 0 outside 1..=16"),
            ("huge lanes", |s| s.lanes_per_engine = vec![32], "lanes_per_engine 32 outside 1..=16"),
            ("zero fifo", |s| s.input_fifo_depth = vec![0], "input_fifo_depth 0 outside 1..=4096"),
            (
                "huge fifo",
                |s| s.input_fifo_depth = vec![8192],
                "input_fifo_depth 8192 outside 1..=4096",
            ),
        ];
        for (what, mutate, message) in cases {
            let mut spec = SweepSpec::quick();
            mutate(&mut spec);
            match spec.validate() {
                Err(SpecError::Invalid(m)) => assert_eq!(m, message, "{what}"),
                other => panic!("{what}: expected Invalid, got {other:?}"),
            }
        }
        let mut spec = SweepSpec::quick();
        spec.input_fifo_depth.clear();
        assert_eq!(
            spec.validate(),
            Err(SpecError::Invalid("axis `input_fifo_depth` is empty".to_string()))
        );
        let mut spec = SweepSpec::quick();
        spec.lanes_per_engine = vec![1, 1];
        assert!(spec.validate().is_err(), "duplicate lane values");
    }

    #[test]
    fn toml_parses_the_lane_and_fifo_axes() {
        let spec =
            SweepSpec::from_toml_str("lanes_per_engine = [1, 2, 4]\ninput_fifo_depth = [8, 64]\n")
                .unwrap();
        assert_eq!(spec.lanes_per_engine, vec![1, 2, 4]);
        assert_eq!(spec.input_fifo_depth, vec![8, 64]);
        assert_eq!(spec.point_count(), 4 * 4 * 3 * 2);
        // Degenerate values error at parse time through validate().
        let err = SweepSpec::from_toml_str("lanes_per_engine = [0]\n").unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)), "{err}");
        // The canonical encoding covers both axes: growing either
        // changes the sweep identity.
        let base = SweepSpec::quick();
        let mut lanes = base.clone();
        lanes.lanes_per_engine.push(2);
        assert_ne!(base.canonical(), lanes.canonical());
        let mut fifo = base.clone();
        fifo.input_fifo_depth.push(16);
        assert_ne!(base.canonical(), fifo.canonical());
    }

    #[test]
    fn validation_rejects_duplicate_axis_values() {
        let mut spec = SweepSpec::quick();
        spec.apps = vec![AppKind::Nerf, AppKind::Nerf, AppKind::Gia];
        assert!(spec.validate().is_err(), "duplicate app would double-weight the average");
        let mut spec = SweepSpec::quick();
        spec.nfp_units = vec![8, 8];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick();
        spec.clock_ghz = vec![1.0, 1.0];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn toml_rejects_out_of_range_u32_axes() {
        // 2^32 + 1024 must error, not silently truncate to 1024.
        let err = SweepSpec::from_toml_str("grid_sram_kb = [4294968320]").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }), "{err}");
        let err = SweepSpec::from_toml_str("nfp_units = [4294967297]").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn presets_resolve_and_validate() {
        for name in SweepSpec::PRESETS {
            let spec = SweepSpec::preset(name).unwrap();
            spec.validate().unwrap();
            assert_eq!(spec.name, name);
        }
        assert!(SweepSpec::preset("nope").is_none());
    }
}
