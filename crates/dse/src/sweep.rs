//! The sweep engine: spec in, deterministic evaluated points out.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ng_neural::apps::{AppKind, EncodingKind};
use ngpc::EmulationContext;
use serde::{Deserialize, Serialize};

use crate::cache::EvalCache;
use crate::obs_counters;
use crate::pareto::{Constraints, Objectives, StreamingFrontier};
use crate::pool;
use crate::spec::{DesignPoint, SpecError, SweepSpec};

/// One evaluated configuration: the point plus the emulator outputs the
/// frontier and reports read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// The configuration.
    pub point: DesignPoint,
    /// End-to-end speedup over the GPU baseline.
    pub speedup: f64,
    /// Cluster area as % of the GPU die.
    pub area_pct_of_gpu: f64,
    /// Cluster power as % of GPU TDP.
    pub power_pct_of_gpu: f64,
    /// GPU baseline frame time (ms).
    pub gpu_ms: f64,
    /// NGPC end-to-end frame time (ms).
    pub ngpc_frame_ms: f64,
    /// The configuration's Amdahl bound.
    pub amdahl_bound: f64,
    /// Whether the rest-kernel stage dominates (more NFPs won't help).
    pub plateaued: bool,
}

impl EvaluatedPoint {
    /// This point's position in objective space.
    pub fn objectives(&self) -> Objectives {
        Objectives {
            speedup: self.speedup,
            area_pct: self.area_pct_of_gpu,
            power_pct: self.power_pct_of_gpu,
        }
    }
}

/// One architecture with per-app speedups folded into the cross-app
/// average — the objective the paper's Fig. 12 bars report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchPoint {
    /// Input-encoding scheme.
    pub encoding: EncodingKind,
    /// Frame resolution in pixels.
    pub pixels: u64,
    /// NFP count.
    pub nfp_units: u32,
    /// NFP clock in GHz.
    pub clock_ghz: f64,
    /// Grid SRAM per engine in KiB.
    pub grid_sram_kb: u32,
    /// Banks per grid SRAM.
    pub grid_sram_banks: u32,
    /// Input-encoding engines per NFP.
    pub encoding_engines: u32,
    /// MAC array rows of the MLP engine.
    pub mac_rows: u32,
    /// MAC array columns of the MLP engine.
    pub mac_cols: u32,
    /// Query lanes per encoding engine.
    pub lanes_per_engine: u32,
    /// Fusion input-FIFO depth in entries.
    pub input_fifo_depth: u32,
    /// Number of apps averaged.
    pub apps: u32,
    /// Cross-app average speedup.
    pub avg_speedup: f64,
    /// Cluster area as % of the GPU die (app-independent).
    pub area_pct_of_gpu: f64,
    /// Cluster power as % of GPU TDP (app-independent).
    pub power_pct_of_gpu: f64,
}

impl ArchPoint {
    /// This architecture's position in objective space.
    pub fn objectives(&self) -> Objectives {
        Objectives {
            speedup: self.avg_speedup,
            area_pct: self.area_pct_of_gpu,
            power_pct: self.power_pct_of_gpu,
        }
    }

    /// Whether this is the paper's published NGPC-64 headline
    /// *organisation*: hashgrid, FHD, 64 units, 1 GHz, 1 MB/8-bank
    /// grid SRAMs, 16 engines, 64x64 MACs. The lane/FIFO
    /// microarchitecture axes are deliberately left free: in the
    /// exploded lane/FIFO space the model (correctly) finds the
    /// paper's 64-deep FIFO oversized at plateau scale — every app is
    /// Amdahl-bound at 64 units, so any depth buys the same speedup
    /// and the frontier right-sizes the FIFO below the overlap knee.
    /// In the paper and mac-arrays presets those axes are pinned at
    /// the paper's 1 lane / 64 entries, so the match is exact there.
    /// Shared by every headline regression guard (`dse
    /// --check-headline` in both sweep and search modes, and
    /// `bench_dse --check-warm`) so the guards cannot drift apart.
    pub fn is_paper_organisation(&self) -> bool {
        self.encoding == EncodingKind::MultiResHashGrid
            && self.pixels == crate::spec::FHD_PIXELS
            && self.nfp_units == 64
            && self.clock_ghz == 1.0
            && self.grid_sram_kb == 1024
            && self.grid_sram_banks == 8
            && self.encoding_engines == 16
            && self.mac_rows == 64
            && self.mac_cols == 64
    }
}

/// How a sweep executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Points in the sweep.
    pub total_points: usize,
    /// Points actually evaluated this run (the cache misses; 0 on a
    /// full cache hit).
    pub evaluated: usize,
    /// Points served from the point-level cache.
    pub cache_hits: usize,
    /// Whether *every* point came from the evaluation cache.
    pub cache_hit: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl SweepStats {
    /// Evaluation throughput (points per second); 0 on a cache hit.
    pub fn points_per_sec(&self) -> f64 {
        if self.evaluated == 0 || self.wall.is_zero() {
            0.0
        } else {
            self.evaluated as f64 / self.wall.as_secs_f64()
        }
    }
}

/// A completed sweep: the spec, every evaluated point (in spec order),
/// and execution stats.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The spec that was swept.
    pub spec: SweepSpec,
    /// One result per design point, in the spec's enumeration order.
    pub points: Vec<EvaluatedPoint>,
    /// How the run executed.
    pub stats: SweepStats,
    /// The point-store generation directory results were cached under,
    /// when caching was enabled (and writable).
    pub cache_path: Option<PathBuf>,
}

impl SweepOutcome {
    /// Per-app evaluated points, in spec order.
    pub fn for_app(&self, app: AppKind) -> Vec<EvaluatedPoint> {
        self.points.iter().copied().filter(|p| p.point.app == app).collect()
    }

    /// The constrained Pareto frontier of one app's points, sorted by
    /// ascending area (the natural reading order of a frontier).
    ///
    /// Streams the points through a [`StreamingFrontier`] — each
    /// point's objectives are computed exactly once and no intermediate
    /// per-app or per-objective vectors are materialised.
    pub fn per_app_frontier(&self, app: AppKind, constraints: &Constraints) -> Vec<EvaluatedPoint> {
        let mut frontier = StreamingFrontier::new();
        for p in self.points.iter().filter(|p| p.point.app == app) {
            frontier.insert_constrained(p.objectives(), *p, constraints);
        }
        let mut out = frontier.into_payloads();
        out.sort_by(|a: &EvaluatedPoint, b| a.area_pct_of_gpu.total_cmp(&b.area_pct_of_gpu));
        out
    }

    /// Fold per-app results into one [`ArchPoint`] per architecture
    /// (cross-app average speedup), in a deterministic order.
    pub fn cross_app(&self) -> Vec<ArchPoint> {
        let mut by_arch: HashMap<crate::spec::ArchKey, ArchPoint> = HashMap::new();
        let mut order: Vec<crate::spec::ArchKey> = Vec::new();
        for p in &self.points {
            let key = p.point.arch_key();
            let entry = by_arch.entry(key).or_insert_with(|| {
                order.push(key);
                ArchPoint {
                    encoding: p.point.encoding,
                    pixels: p.point.pixels,
                    nfp_units: p.point.nfp_units,
                    clock_ghz: p.point.clock_ghz,
                    grid_sram_kb: p.point.grid_sram_kb,
                    grid_sram_banks: p.point.grid_sram_banks,
                    encoding_engines: p.point.encoding_engines,
                    mac_rows: p.point.mac_rows,
                    mac_cols: p.point.mac_cols,
                    lanes_per_engine: p.point.lanes_per_engine,
                    input_fifo_depth: p.point.input_fifo_depth,
                    apps: 0,
                    avg_speedup: 0.0,
                    area_pct_of_gpu: p.area_pct_of_gpu,
                    power_pct_of_gpu: p.power_pct_of_gpu,
                }
            });
            entry.apps += 1;
            entry.avg_speedup += p.speedup; // divided once all apps folded
        }
        order
            .into_iter()
            .map(|key| {
                let mut a = by_arch[&key];
                a.avg_speedup /= a.apps as f64;
                a
            })
            .collect()
    }

    /// The constrained Pareto frontier of the cross-app-average
    /// objective, sorted by ascending area. Objectives are computed
    /// once per architecture and streamed with dominance pruning.
    pub fn cross_app_frontier(&self, constraints: &Constraints) -> Vec<ArchPoint> {
        let mut frontier = StreamingFrontier::new();
        for a in self.cross_app() {
            frontier.insert_constrained(a.objectives(), a, constraints);
        }
        let mut out = frontier.into_payloads();
        out.sort_by(|a: &ArchPoint, b| a.area_pct_of_gpu.total_cmp(&b.area_pct_of_gpu));
        out
    }
}

/// Evaluate design points on the work-stealing pool: one result per
/// point, in input order, bit-identical regardless of thread count.
/// Shared by [`SweepEngine::run_owned`] and the distributed backend's
/// worker slices ([`crate::distrib`]).
pub fn evaluate_points(points: &[DesignPoint], threads: usize) -> Vec<EvaluatedPoint> {
    let (slots, interrupted) = evaluate_points_partial(points, threads, || false);
    debug_assert!(!interrupted, "cancellation disabled");
    slots.into_iter().map(|s| s.expect("every point evaluated")).collect()
}

/// [`evaluate_points`] with a drain predicate: once `cancel()` turns
/// true the pool stops dispatching new points (in-flight ones finish).
/// Returns one slot per point in input order — `None` marks the
/// unevaluated tail — plus whether the run was actually cut short.
pub fn evaluate_points_partial(
    points: &[DesignPoint],
    threads: usize,
    cancel: impl Fn() -> bool + Sync,
) -> (Vec<Option<EvaluatedPoint>>, bool) {
    let _span = ng_obs::span("evaluate");
    let ticks = obs_counters::eval_ticks();
    let slots = pool::map_stateful_partial(
        points,
        threads,
        EmulationContext::new,
        |ctx, p: &DesignPoint| {
            // Fault-plan hook: in a marked worker process whose plan
            // names this tick, the process dies or hangs *here* —
            // before the point completes — so the slice is genuinely
            // unfinished and the coordinator's lease recovery has real
            // work to do. (`signal:term` raises SIGTERM here instead,
            // driving the graceful-drain path this function feeds.)
            ng_fault::on_eval_tick();
            let r = ctx.eval(&p.emulator_input());
            ticks.incr();
            EvaluatedPoint {
                point: *p,
                speedup: r.speedup,
                area_pct_of_gpu: r.area_pct_of_gpu,
                power_pct_of_gpu: r.power_pct_of_gpu,
                gpu_ms: r.gpu_ms,
                ngpc_frame_ms: r.ngpc_frame_ms,
                amdahl_bound: r.amdahl_bound,
                plateaued: r.plateaued,
            }
        },
        cancel,
    );
    let interrupted = slots.iter().any(Option::is_none);
    (slots, interrupted)
}

/// How a cancellable sweep ([`SweepEngine::run_draining`]) ended.
// The variants are deliberately unboxed: the value is a transient
// return, matched and consumed immediately, never stored.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SweepRun {
    /// The sweep ran to completion.
    Complete(SweepOutcome),
    /// A drain was requested mid-evaluation: everything already
    /// computed was flushed to the point store, the tail was left
    /// unevaluated.
    Interrupted(DrainedSweep),
}

/// The drain record of an interrupted sweep — what made it into the
/// store before the stop, which is exactly what `dse resume` does not
/// have to re-evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainedSweep {
    /// Points in the spec.
    pub total_points: usize,
    /// Points served from the cache before the drain.
    pub cache_hits: usize,
    /// Points freshly evaluated (and appended) before the drain.
    pub freshly_completed: usize,
    /// The store generation directory the completed points live in.
    pub cache_path: Option<PathBuf>,
}

impl DrainedSweep {
    /// Points a resume still has to evaluate.
    pub fn remaining(&self) -> usize {
        self.total_points - self.cache_hits - self.freshly_completed
    }
}

/// The sweep executor: thread count + cache policy.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
    cache_dir: Option<PathBuf>,
    quiet: bool,
    auto_compact: Option<usize>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// Default cache directory, relative to the working directory.
    pub const DEFAULT_CACHE_DIR: &'static str = ".dse-cache";

    /// An engine using every available core and the default cache dir.
    pub fn new() -> Self {
        SweepEngine {
            threads: pool::available_threads(),
            cache_dir: Some(PathBuf::from(Self::DEFAULT_CACHE_DIR)),
            quiet: false,
            auto_compact: None,
        }
    }

    /// Suppress the live stderr progress line even when stderr is a
    /// terminal (`dse --quiet`). Progress never touches stdout either
    /// way, so emitters stay byte-identical.
    pub fn with_quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Use exactly `threads` workers (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Cache evaluations under `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disable the evaluation cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// Opt in to automatic store compaction (`dse --auto-compact N`):
    /// after a run's append, if the live CSV tail holds at least
    /// `threshold` rows, fold it into a binary generation. Off by
    /// default — compaction is cheap but not free, and short-lived
    /// stores never amortise it.
    pub fn with_auto_compact(mut self, threshold: Option<usize>) -> Self {
        self.auto_compact = threshold;
        self
    }

    /// Worker threads this engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a sweep: validate, partition the points into cached and
    /// missing, evaluate only the misses in parallel, append them back
    /// to the point store, and return the merged results in spec order.
    ///
    /// Borrowing callers pay one spec clone (the outcome owns its
    /// spec); callers that can part with the spec should prefer
    /// [`SweepEngine::run_owned`], which runs clone-free.
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepOutcome, SpecError> {
        self.run_owned(spec.clone())
    }

    /// [`SweepEngine::run`] taking the spec by value: no spec clone,
    /// and the merge fills cache hits and fresh evaluations into a
    /// single result vector instead of collecting intermediates.
    pub fn run_owned(&self, spec: SweepSpec) -> Result<SweepOutcome, SpecError> {
        match self.run_inner(spec, &|| false)? {
            SweepRun::Complete(outcome) => Ok(outcome),
            SweepRun::Interrupted(_) => unreachable!("cancellation disabled"),
        }
    }

    /// [`SweepEngine::run_owned`] with a drain predicate (the CLI
    /// passes [`crate::cancel::cancelled`]): on cancellation the
    /// completed points are flushed to the store and a
    /// [`SweepRun::Interrupted`] drain record comes back instead of an
    /// outcome.
    pub fn run_draining(
        &self,
        spec: SweepSpec,
        cancel: impl Fn() -> bool + Sync,
    ) -> Result<SweepRun, SpecError> {
        self.run_inner(spec, &cancel)
    }

    fn run_inner(
        &self,
        spec: SweepSpec,
        cancel: &(dyn Fn() -> bool + Sync),
    ) -> Result<SweepRun, SpecError> {
        spec.validate()?;
        let _span = ng_obs::span("sweep");
        let started = Instant::now();
        let cache = self.cache_dir.as_ref().map(|dir| EvalCache::new(dir.clone()));

        let design_points = spec.points();
        // `slots` doubles as the hit/miss partition and the result
        // buffer: hits are already final, the gaps are filled from the
        // pool's output below.
        let mut slots: Vec<Option<EvaluatedPoint>> = {
            let _span = ng_obs::span("lookup");
            match &cache {
                Some(cache) => cache.lookup(&design_points),
                None => vec![None; design_points.len()],
            }
        };
        let missing: Vec<DesignPoint> = design_points
            .iter()
            .zip(&slots)
            .filter(|(_, hit)| hit.is_none())
            .map(|(p, _)| *p)
            .collect();
        drop(design_points);
        obs_counters::sweep_points().add(slots.len() as u64);
        obs_counters::sweep_cache_hits().add((slots.len() - missing.len()) as u64);

        // The work-stealing pool sees only the misses; results come
        // back in `missing` (= spec) order. The meter samples the
        // shared eval-tick counter from a side thread, so the pool
        // never blocks on terminal i/o.
        let meter = ng_obs::Meter::start(
            "sweep",
            obs_counters::eval_ticks().clone(),
            missing.len() as u64,
            "points",
            !missing.is_empty() && ng_obs::stderr_wants_progress(self.quiet),
        );
        let (eval_slots, interrupted) = evaluate_points_partial(&missing, self.threads, cancel);
        meter.finish();
        let evaluated: Vec<EvaluatedPoint> = eval_slots.iter().copied().flatten().collect();
        obs_counters::sweep_fresh_evals().add(evaluated.len() as u64);

        // A cache write failure (read-only dir, ...) downgrades to a
        // write-through-less run rather than failing the sweep; the
        // store dir is still reported, since hits were read from it.
        // On a drain this flush is the whole point: everything already
        // computed becomes resumable state.
        let cache_path = cache.as_ref().map(|cache| {
            let _span = ng_obs::span("append");
            let _ = cache.append(&evaluated);
            cache.store_dir()
        });

        let cache_hits = slots.len() - missing.len();
        if interrupted {
            return Ok(SweepRun::Interrupted(DrainedSweep {
                total_points: slots.len(),
                cache_hits,
                freshly_completed: evaluated.len(),
                cache_path,
            }));
        }

        // Opt-in auto-compaction: fold a grown CSV tail into a binary
        // generation once it crosses the threshold. Failure downgrades
        // like a cache write failure — the WAL stays authoritative.
        if let (Some(threshold), Some(cache)) = (self.auto_compact, &cache) {
            if cache.tail_row_estimate() >= threshold {
                if let Err(e) = crate::compact::compact(cache) {
                    eprintln!("dse: auto-compaction failed (store still serves): {e}");
                }
            }
        }

        // Merge in place: cached points keep their slot, fresh
        // evaluations fill the gaps in order — both sides are already
        // in spec order.
        let mut fresh = evaluated.into_iter();
        for slot in slots.iter_mut().filter(|s| s.is_none()) {
            *slot = Some(fresh.next().expect("one evaluation per miss"));
        }
        let points: Vec<EvaluatedPoint> =
            slots.into_iter().map(|s| s.expect("every slot filled")).collect();

        Ok(SweepRun::Complete(SweepOutcome {
            spec,
            stats: SweepStats {
                total_points: points.len(),
                evaluated: missing.len(),
                cache_hits,
                cache_hit: cache.is_some() && missing.is_empty(),
                threads: self.threads,
                wall: started.elapsed(),
            },
            points,
            cache_path,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FHD_PIXELS;

    fn engine() -> SweepEngine {
        SweepEngine::new().without_cache()
    }

    #[test]
    fn sweep_matches_direct_emulation_in_spec_order() {
        let spec = SweepSpec::quick();
        let outcome = engine().run(&spec).unwrap();
        assert_eq!(outcome.points.len(), spec.point_count());
        for (i, ep) in outcome.points.iter().enumerate() {
            assert_eq!(ep.point.index, i);
            let direct = ngpc::emulate(&ep.point.emulator_input());
            assert_eq!(ep.speedup, direct.speedup, "point {i}");
            assert_eq!(ep.area_pct_of_gpu, direct.area_pct_of_gpu);
        }
        assert!(!outcome.stats.cache_hit);
        assert_eq!(outcome.stats.evaluated, spec.point_count());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = SweepSpec::quick();
        let one = engine().with_threads(1).run(&spec).unwrap();
        let many = engine().with_threads(16).run(&spec).unwrap();
        assert_eq!(one.points, many.points);
    }

    #[test]
    fn fig12a_averages_via_cross_app() {
        // The cross-app fold must reproduce the paper's Fig. 12-a bars.
        let outcome = engine().run(&SweepSpec::quick()).unwrap();
        let archs = outcome.cross_app();
        for (n, target) in [(8u32, 12.94f64), (16, 20.85), (32, 33.73), (64, 39.04)] {
            let a = archs.iter().find(|a| a.nfp_units == n).unwrap();
            assert_eq!(a.apps, 4);
            assert!((a.avg_speedup - target).abs() < target * 0.01, "{}: {}", n, a.avg_speedup);
        }
    }

    #[test]
    fn paper_headline_point_is_on_the_cross_app_frontier() {
        let outcome = engine().run(&SweepSpec::paper()).unwrap();
        let frontier = outcome.cross_app_frontier(&Constraints::NONE);
        let headline = frontier.iter().find(|a| {
            a.encoding == EncodingKind::MultiResHashGrid
                && a.nfp_units == 64
                && a.clock_ghz == 1.0
                && a.grid_sram_kb == 1024
                && a.grid_sram_banks == 8
                && a.pixels == FHD_PIXELS
        });
        let arch = headline.expect("NGPC-64 must be Pareto-optimal");
        assert!((arch.avg_speedup - 39.04).abs() < 0.4, "{}", arch.avg_speedup);
    }

    #[test]
    fn per_app_frontier_respects_constraints_and_dominance() {
        let outcome = engine().run(&SweepSpec::paper()).unwrap();
        let budget = Constraints {
            max_area_pct: Some(10.0),
            max_power_pct: Some(6.0),
            ..Constraints::default()
        };
        let frontier = outcome.per_app_frontier(AppKind::Gia, &budget);
        assert!(!frontier.is_empty());
        for p in &frontier {
            assert!(p.area_pct_of_gpu <= 10.0 && p.power_pct_of_gpu <= 6.0);
            assert_eq!(p.point.app, AppKind::Gia);
        }
        for a in &frontier {
            for b in &frontier {
                assert!(!a.objectives().dominates(&b.objectives()) || a == b);
            }
        }
    }
}
