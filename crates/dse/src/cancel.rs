//! Graceful shutdown: a signal watcher and a global cancellation token.
//!
//! The first `SIGINT`/`SIGTERM` sets the process-wide cancellation
//! token — the evaluation pool stops dispatching new points, the
//! searcher stops its rounds, the coordinator forwards the drain to its
//! workers, the compactor aborts before publishing — and every layer
//! flushes what it already computed to the point store before exiting
//! with [`EXIT_INTERRUPTED`]. A second signal skips the drain and
//! hard-exits immediately with [`EXIT_KILLED`]: the store's appends are
//! crash-safe (locked, tail-healed), so even the hard exit loses at
//! most the rows not yet appended.
//!
//! Dependency-free: the handler is installed through the C runtime's
//! `signal()` entry point, which std already links on every unix — no
//! `libc` crate, no `struct sigaction` layout to get wrong per-arch.
//! The handler body is async-signal-safe (one atomic increment, one
//! `write(2)`, and on the second signal `_exit`).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;

pub use crate::distrib::{EXIT_INTERRUPTED, EXIT_KILLED};

/// How many SIGINT/SIGTERMs this process has received.
static SIGNALS_SEEN: AtomicU32 = AtomicU32::new(0);

/// Cancellations requested programmatically (drain-flag forwarding,
/// tests) — folded into [`cancelled`] alongside the signal count.
static REQUESTED: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn _exit(code: i32) -> !;
    }
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
}

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    let prior = SIGNALS_SEEN.fetch_add(1, Ordering::SeqCst);
    // Async-signal-safe notices only: raw write(2), no stdio locks.
    unsafe {
        if prior == 0 {
            const MSG: &[u8] = b"dse: draining (signal again to exit immediately)\n";
            sys::write(2, MSG.as_ptr(), MSG.len());
        } else {
            const MSG: &[u8] = b"dse: second signal, exiting now\n";
            sys::write(2, MSG.as_ptr(), MSG.len());
            sys::_exit(EXIT_KILLED);
        }
    }
}

/// Install the SIGINT/SIGTERM watcher (idempotent). Call once near
/// process start, before long-running work.
pub fn install_signal_watcher() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        #[cfg(unix)]
        unsafe {
            sys::signal(sys::SIGINT, on_signal as *const () as usize);
            sys::signal(sys::SIGTERM, on_signal as *const () as usize);
        }
    });
}

/// Whether a drain has been requested — by a signal or by
/// [`request_cancel`]. Checked between points/rounds on every hot
/// loop; a relaxed load, free when nothing happened.
#[inline]
pub fn cancelled() -> bool {
    SIGNALS_SEEN.load(Ordering::Relaxed) > 0 || REQUESTED.load(Ordering::Relaxed) > 0
}

/// Request a drain programmatically — how a worker that sees the
/// coordinator's drain flag joins the shutdown without a signal of its
/// own.
pub fn request_cancel() {
    REQUESTED.fetch_add(1, Ordering::SeqCst);
}

/// Clear programmatic cancellation requests (test isolation only —
/// signal counts are deliberately not resettable).
#[doc(hidden)]
pub fn reset_requested_for_tests() {
    REQUESTED.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_cancel_sets_and_resets() {
        reset_requested_for_tests();
        assert!(!cancelled());
        request_cancel();
        assert!(cancelled());
        reset_requested_for_tests();
        assert!(!cancelled());
    }
}
