//! Multi-process sharded sweep backend.
//!
//! PR 4 made one process fast (~240k points/sec on a warm model); this
//! module is the bridge to the ROADMAP's cluster-scale north star: a
//! sweep partitioned over *processes* that coordinate purely through
//! the (now multi-writer-safe) point store.
//!
//! ## Protocol
//!
//! * **Partition** — [`shard_points`]: worker `i` of `N` owns the
//!   points whose canonical spec index `≡ i (mod N)`. Round-robin over
//!   the deterministic enumeration order balances apps and axis
//!   extremes across workers and depends on nothing but `(spec, i, N)`,
//!   so any party can recompute any slice.
//! * **Worker** — [`run_worker_slice`] (the `dse --worker-shard i/N`
//!   mode): enumerate the spec, keep the slice, serve what the store
//!   already has, evaluate the rest on the in-process pool, and append
//!   the fresh rows back. The store *is* the result channel — a worker
//!   whose append fails exits non-zero, because results it cannot
//!   persist are results the coordinator will never see.
//! * **Coordinator** — [`Coordinator::run`] (the `dse --workers N`
//!   mode): resolve the spec, ship it to workers as a `to_toml()` file
//!   (workers re-parse rather than trusting argv to carry eleven
//!   axes), spawn `N` child processes of the current executable, wait,
//!   then merge by looking every point up in the store.
//! * **Crash recovery** — any point still missing after the workers
//!   exit (a killed worker, a torn row) is evaluated by the
//!   coordinator itself and appended, so the merged outcome is always
//!   complete and bit-identical to a single-process run. Resumability
//!   falls out of the same path: a re-run after `kill -9` finds the
//!   dead run's appended points as hits and pays only the delta.
//! * **Heartbeats** — workers append progress events to
//!   [`HEARTBEAT_FILE`] in the shared store dir (locked JSONL, the
//!   same discipline as the shards) every [`HEARTBEAT_EVERY`] while
//!   evaluating. The coordinator tails the file while polling its
//!   children, reports live per-worker progress, and records each
//!   child's exit status and last-heartbeat age in its
//!   [`WorkerReport`] — so a dead worker's slice is recovered with a
//!   diagnosis, never silently.
//! * **Leases** — each slice is held under a lease the worker renews
//!   implicitly by making progress. A worker whose heartbeats go
//!   silent *or* whose done-count freezes past the stall window
//!   ([`Coordinator::with_stall_after`]) has its lease revoked: the
//!   coordinator SIGKILLs it, and — up to [`MAX_LEASE_GRANTS`] grants
//!   per slice — re-leases the slice to a freshly spawned replacement
//!   worker, which resumes from the store and pays only the remaining
//!   points. When grants run out (or the respawn itself fails), the
//!   slice falls to the merge step and is evaluated locally, the last
//!   resort. Every lease decision (`grant`/`expire`/`kill`/
//!   `reassign`/`local`) is recorded in the run ledger, so recovery is
//!   replayable after the fact. The frozen-progress check is a
//!   heuristic tuned to this model's microsecond-scale points: a
//!   legitimate single point outlasting the window costs a wasted
//!   kill-and-respawn cycle, never a wrong result.
//!
//! [`run_sharded_in_process`] drives the identical
//! slice/append/merge protocol on worker *threads* — the form
//! `bench_dse` measures and the stress tests hammer, with no process
//! spawn in the loop.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::cache::EvalCache;
use crate::obs_counters;
use crate::pool;
use crate::spec::{DesignPoint, SpecError, SweepSpec};
use crate::sweep::{
    evaluate_points, evaluate_points_partial, EvaluatedPoint, SweepOutcome, SweepStats,
};

/// Name of the shared worker-heartbeat file inside the store dir.
pub const HEARTBEAT_FILE: &str = "heartbeats.jsonl";

/// Name of the drain flag the coordinator drops into the store dir
/// when it catches SIGINT/SIGTERM: workers poll it on their heartbeat
/// cadence and join the drain — finish the current point, flush
/// appends, exit [`EXIT_INTERRUPTED`]. The store is already the
/// coordination channel, so the drain travels the same way results do.
pub const DRAIN_FILE: &str = "drain.flag";

/// Environment variable overriding the coordinator stall window, in
/// seconds (`NG_DSE_STALL_TIMEOUT=2.5`). `--stall-timeout` wins over
/// the environment; both win over the 10 s default.
pub const STALL_TIMEOUT_ENV: &str = "NG_DSE_STALL_TIMEOUT";

/// How often an evaluating worker appends a progress heartbeat.
pub const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// Total lease grants per slice: the initial spawn plus one
/// replacement. A slice whose replacement *also* stalls is almost
/// certainly hitting a deterministic wedge (the same inputs produce
/// the same hang), so further respawns would only burn the stall
/// window again — the merge step's local evaluation ends it instead.
pub const MAX_LEASE_GRANTS: u32 = 2;

/// Worker exit code for spec/usage errors — deterministic failures a
/// respawn cannot fix.
pub const EXIT_USAGE: i32 = 2;

/// Worker exit code when the slice evaluated but the results could not
/// be appended to the shared store (the coordinator will never see
/// them, so the worker refuses to report success). Storage
/// *exhaustion* (ENOSPC/EROFS) no longer takes this path — the cache
/// degrades to an in-memory overlay and the run completes.
pub const EXIT_STORE_APPEND: i32 = 3;

/// Exit code when `dse fsck --check` or `dse trace --check` found
/// defects: the audit itself ran fine, the artifact failed it.
/// Distinct from [`EXIT_USAGE`] so CI can tell "bad invocation" from
/// "bad store".
pub const EXIT_CHECK_FAILED: i32 = 4;

/// Exit code after a graceful drain: SIGINT/SIGTERM was caught, every
/// in-flight point finished and flushed, and `dse resume` can finish
/// the job. 128 + SIGINT's signal number, the shell convention.
pub const EXIT_INTERRUPTED: i32 = 130;

/// Exit code when a *second* signal arrived before the drain finished
/// and the process hard-exited from the handler. The store stays
/// consistent (appends are atomic per row under the shard lock; a torn
/// tail heals on the next open), but un-flushed points are lost.
pub const EXIT_KILLED: i32 = 131;

/// Human-readable cause for a known exit code — the one documented
/// table shared by worker supervision, `dse fsck --check`,
/// `dse trace --check` and the drain path. Failure reports speak this
/// instead of bare numbers.
pub fn exit_code_cause(code: i32) -> Option<&'static str> {
    match code {
        EXIT_USAGE => Some("spec or usage error; a respawn cannot help"),
        EXIT_STORE_APPEND => {
            Some("evaluated its slice but could not persist the results to the store")
        }
        EXIT_CHECK_FAILED => Some("a --check audit found defects in the artifact"),
        EXIT_INTERRUPTED => {
            Some("drained gracefully after SIGINT/SIGTERM; `dse resume` finishes the job")
        }
        EXIT_KILLED => Some("hard exit on a second signal before the drain finished"),
        _ => None,
    }
}

/// Append one heartbeat to the store-dir heartbeat file (best effort —
/// observability never fails a worker) and mirror it into the trace
/// ledger when one is being recorded.
fn emit_store_heartbeat(
    cache_dir: &Path,
    shard: usize,
    of: usize,
    done: usize,
    total: usize,
    state: &str,
) {
    // `heartbeat:delay` fault: hold the beat back so the coordinator
    // sees silence — the stall path's trigger, injected on the worker
    // side where real delays (swap, NFS stalls) actually originate.
    if let Some(delay) = ng_fault::heartbeat_delay() {
        std::thread::sleep(delay);
    }
    let line = ng_obs::sink::heartbeat_line(shard, of, done, total, state);
    let _ = ng_obs::append_jsonl_line(&cache_dir.join(HEARTBEAT_FILE), &line);
    ng_obs::emit_heartbeat(shard, of, done, total, state);
}

/// Error raised by the distributed backend.
#[derive(Debug)]
pub enum DistribError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A shard argument is out of range (`shard` must be `< of`,
    /// `of ≥ 1`).
    Shard {
        /// The worker's shard index.
        shard: usize,
        /// The shard count.
        of: usize,
    },
    /// Spawning a worker, shipping the spec file, or persisting results
    /// failed.
    Io(io::Error),
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Spec(e) => write!(f, "{e}"),
            DistribError::Shard { shard, of } => {
                write!(f, "worker shard {shard}/{of} out of range (need 0 <= shard < of)")
            }
            DistribError::Io(e) => write!(f, "distributed sweep i/o: {e}"),
        }
    }
}

impl std::error::Error for DistribError {}

impl From<SpecError> for DistribError {
    fn from(e: SpecError) -> Self {
        DistribError::Spec(e)
    }
}

impl From<io::Error> for DistribError {
    fn from(e: io::Error) -> Self {
        DistribError::Io(e)
    }
}

/// Parse a `--worker-shard` operand of the form `i/N`.
pub fn parse_shard_arg(s: &str) -> Option<(usize, usize)> {
    let (shard, of) = s.split_once('/')?;
    let (shard, of) = (shard.trim().parse().ok()?, of.trim().parse().ok()?);
    (shard < of).then_some((shard, of))
}

/// Worker `shard`'s slice of the canonical point order: every point
/// with `index ≡ shard (mod of)`. The union of all `of` slices is the
/// whole spec, the slices are disjoint, and each is computable from
/// `(spec, shard, of)` alone.
pub fn shard_points(points: &[DesignPoint], shard: usize, of: usize) -> Vec<DesignPoint> {
    points.iter().filter(|p| p.index % of == shard).copied().collect()
}

/// What one worker did, as reported by [`run_worker_slice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count.
    pub of: usize,
    /// Points in this worker's slice.
    pub points: usize,
    /// Slice points already in the store.
    pub cache_hits: usize,
    /// Slice points freshly evaluated (and appended).
    pub evaluated: usize,
    /// Whether the worker drained early (coordinator drain flag or its
    /// own signal) — everything it did evaluate is flushed, but the
    /// slice tail is unevaluated and the caller should exit
    /// [`EXIT_INTERRUPTED`].
    pub interrupted: bool,
}

impl fmt::Display for WorkerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {}/{}: {} points, {} hits, {} evaluated{}",
            self.shard,
            self.of,
            self.points,
            self.cache_hits,
            self.evaluated,
            if self.interrupted { " (drained early)" } else { "" },
        )
    }
}

/// Evaluate one worker's slice of `spec` and append the fresh results
/// to the shared store under `cache_dir`.
///
/// Unlike [`crate::sweep::SweepEngine`], an append failure here is an
/// *error*, not a downgrade: the store is how results reach the
/// coordinator.
pub fn run_worker_slice(
    spec: &SweepSpec,
    shard: usize,
    of: usize,
    cache_dir: &Path,
    threads: usize,
) -> Result<WorkerSummary, DistribError> {
    run_worker_slice_draining(spec, shard, of, cache_dir, threads, &|| false)
}

/// [`run_worker_slice`] with a drain hook: between points the worker
/// checks `cancel` *and* the coordinator's [`DRAIN_FILE`] (polled on
/// the heartbeat cadence), and on either signal finishes in-flight
/// points, flushes what it has, and returns a summary with
/// `interrupted` set. The `dse --worker-shard` entry point passes the
/// process signal token here; tests pass local predicates so one
/// test's drain cannot leak into another.
pub fn run_worker_slice_draining(
    spec: &SweepSpec,
    shard: usize,
    of: usize,
    cache_dir: &Path,
    threads: usize,
    cancel: &(dyn Fn() -> bool + Sync),
) -> Result<WorkerSummary, DistribError> {
    if shard >= of {
        return Err(DistribError::Shard { shard, of });
    }
    spec.validate()?;
    let _span = ng_obs::span("worker-slice");
    let slice = shard_points(&spec.points(), shard, of);
    let cache = EvalCache::new(cache_dir);
    let missing: Vec<DesignPoint> = {
        let _span = ng_obs::span("lookup");
        spec_misses(&cache, &slice)
    };
    obs_counters::sweep_points().add(slice.len() as u64);
    obs_counters::sweep_cache_hits().add((slice.len() - missing.len()) as u64);

    // Heartbeat thread: sample the evaluation tick counter while the
    // pool grinds through the slice. The counter is process-global, so
    // in-process sharded runs over-attribute concurrent siblings' ticks
    // to each worker (clamped to `total`); worker *processes* — the
    // backend heartbeats exist for — count exactly their own progress.
    let total = missing.len();
    emit_store_heartbeat(cache_dir, shard, of, 0, total, "start");
    let ticks = obs_counters::eval_ticks().clone();
    let base = ticks.get();
    // Condvar rather than sleep-and-poll so stopping wakes the beater
    // immediately — a slice that evaluates in microseconds must not
    // wait out a whole heartbeat period to join.
    let stop = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    // The beat thread doubles as the drain listener: it already wakes
    // every heartbeat period, so a coordinator drain flag is noticed
    // within one beat without a second polling thread.
    let drain_seen = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let beat = {
        let stop = std::sync::Arc::clone(&stop);
        let drain_seen = std::sync::Arc::clone(&drain_seen);
        let dir = cache_dir.to_path_buf();
        std::thread::spawn(move || loop {
            let (lock, cv) = &*stop;
            let stopped = cv
                .wait_timeout_while(
                    lock.lock().expect("heartbeat stop lock never poisoned"),
                    HEARTBEAT_EVERY,
                    |stopped| !*stopped,
                )
                .expect("heartbeat stop lock never poisoned")
                .0;
            if *stopped {
                break;
            }
            drop(stopped);
            if dir.join(DRAIN_FILE).exists() {
                drain_seen.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            let done = (ticks.get().saturating_sub(base) as usize).min(total);
            emit_store_heartbeat(&dir, shard, of, done, total, "run");
        })
    };
    let (eval_slots, interrupted) = evaluate_points_partial(&missing, threads, || {
        cancel() || drain_seen.load(std::sync::atomic::Ordering::Relaxed)
    });
    let evaluated: Vec<EvaluatedPoint> = eval_slots.iter().copied().flatten().collect();
    obs_counters::sweep_fresh_evals().add(evaluated.len() as u64);
    {
        let (lock, cv) = &*stop;
        *lock.lock().expect("heartbeat stop lock never poisoned") = true;
        cv.notify_all();
    }
    let _ = beat.join();

    let append_result = {
        let _span = ng_obs::span("append");
        cache.append(&evaluated)
    };
    // The final heartbeat states how the worker ended; the coordinator
    // shows it when diagnosing a recovery.
    emit_store_heartbeat(
        cache_dir,
        shard,
        of,
        evaluated.len(),
        total,
        match (&append_result, interrupted) {
            (Err(_), _) => "append-failed",
            (Ok(()), true) => "interrupted",
            (Ok(()), false) => "done",
        },
    );
    append_result?;
    Ok(WorkerSummary {
        shard,
        of,
        points: slice.len(),
        cache_hits: slice.len() - missing.len(),
        evaluated: evaluated.len(),
        interrupted,
    })
}

/// The subset of `points` the store cannot serve.
fn spec_misses(cache: &EvalCache, points: &[DesignPoint]) -> Vec<DesignPoint> {
    points
        .iter()
        .zip(cache.lookup(points))
        .filter(|(_, hit)| hit.is_none())
        .map(|(p, _)| *p)
        .collect()
}

/// The last heartbeat the coordinator observed from one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHeartbeat {
    /// Worker-reported state (`start`, `run`, `done`, `append-failed`).
    pub state: String,
    /// Points done at that heartbeat.
    pub done: u64,
    /// Points in the worker's evaluation set.
    pub total: u64,
    /// How long before the report the heartbeat was observed.
    pub age: Duration,
}

impl fmt::Display for WorkerHeartbeat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "last heartbeat {:.1}s ago: {}/{} points, state {}",
            self.age.as_secs_f64(),
            self.done,
            self.total,
            self.state
        )
    }
}

/// How one spawned worker process ended.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's shard index.
    pub shard: usize,
    /// Whether the process exited successfully.
    pub ok: bool,
    /// The worker's stdout (its [`WorkerSummary`] line on success).
    pub stdout: String,
    /// The worker's stderr (diagnostics on failure).
    pub stderr: String,
    /// The child's process id, when it spawned at all.
    pub pid: Option<u32>,
    /// The child's exit code; `None` if it never spawned or died to a
    /// signal (the `kill -9` case the recovery path exists for).
    pub exit: Option<i32>,
    /// The last heartbeat observed before the child exited, if any.
    pub last_heartbeat: Option<WorkerHeartbeat>,
    /// Whether the coordinator flagged this worker as stalled (silent
    /// or frozen past the stall window) while it was still running.
    pub stalled: bool,
    /// Whether the coordinator revoked this worker's lease (SIGKILLed
    /// it after a stall). Implies `stalled`.
    pub lease_revoked: bool,
}

impl WorkerReport {
    fn no_process(shard: usize, stderr: String) -> WorkerReport {
        WorkerReport {
            shard,
            ok: false,
            stdout: String::new(),
            stderr,
            pid: None,
            exit: None,
            last_heartbeat: None,
            stalled: false,
            lease_revoked: false,
        }
    }

    /// One diagnostic line for recovery messages: exit status (with the
    /// known exit codes translated to their cause) plus last-heartbeat
    /// age — what `dse --workers N` prints instead of silently
    /// re-evaluating a dead worker's slice.
    pub fn status_line(&self) -> String {
        let pid = match self.pid {
            Some(pid) => format!(" (pid {pid})"),
            None => String::new(),
        };
        let ended = match (self.ok, self.exit) {
            (true, _) => "exited cleanly".to_string(),
            (false, Some(code)) => match exit_code_cause(code) {
                Some(cause) => format!("exited with status {code} — {cause}"),
                None => format!("exited with status {code}"),
            },
            (false, None) if self.lease_revoked => "SIGKILLed by the coordinator".to_string(),
            (false, None) if self.pid.is_some() => "killed by signal".to_string(),
            (false, None) => "failed to spawn".to_string(),
        };
        let beat = match &self.last_heartbeat {
            Some(hb) => format!("; {hb}"),
            None => "; no heartbeat ever observed".to_string(),
        };
        let stall = if self.lease_revoked {
            " [lease revoked after stall]"
        } else if self.stalled {
            " [was flagged stalled]"
        } else {
            ""
        };
        format!("worker {}{pid}: {ended}{beat}{stall}", self.shard)
    }
}

/// What a cancellable distributed run produced: either the complete
/// merged sweep, or the drain record of a run that caught a signal.
// The variants are deliberately unboxed: the value is a transient
// return, matched and consumed immediately, never stored.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum DistribRun {
    /// Every point delivered (the only variant when cancellation is
    /// disabled).
    Complete(DistribOutcome),
    /// A signal arrived: workers drained, flushed, and exited; the
    /// store holds everything delivered so far and `dse resume` pays
    /// only the remainder.
    Interrupted(DrainedDistrib),
}

/// Accounting for a distributed run that drained on a signal.
#[derive(Debug)]
pub struct DrainedDistrib {
    /// Points in the spec.
    pub total_points: usize,
    /// Points in the store when the drain settled (pre-run hits plus
    /// everything the workers delivered before exiting).
    pub delivered: usize,
    /// One report per spawned worker, drained and otherwise.
    pub workers: Vec<WorkerReport>,
    /// The store the partial results live in.
    pub cache_path: PathBuf,
}

impl DrainedDistrib {
    /// Points a resume still has to evaluate.
    pub fn remaining(&self) -> usize {
        self.total_points - self.delivered
    }
}

/// A completed distributed sweep: the merged outcome plus per-worker
/// accounting.
#[derive(Debug)]
pub struct DistribOutcome {
    /// The merged result — point-for-point identical to a
    /// single-process [`crate::sweep::SweepEngine::run`] of the same
    /// spec.
    pub outcome: SweepOutcome,
    /// One report per spawned worker (empty for an in-process run).
    pub workers: Vec<WorkerReport>,
    /// Points the coordinator had to evaluate itself because no worker
    /// delivered them (crashed workers, torn rows). 0 on a clean run.
    pub recovered: usize,
}

/// The multi-process sweep coordinator: worker count, per-worker
/// threads, store location, and which executable to spawn.
#[derive(Debug, Clone)]
pub struct Coordinator {
    workers: usize,
    threads_per_worker: Option<usize>,
    cache_dir: PathBuf,
    worker_exe: Option<PathBuf>,
    worker_env: Vec<(String, String)>,
    stall_after: Duration,
    quiet: bool,
    auto_compact: Option<usize>,
    map_search: bool,
}

impl Coordinator {
    /// Default stall window: a running worker whose last heartbeat is
    /// older than this is flagged on stderr (heartbeats arrive every
    /// [`HEARTBEAT_EVERY`] = 200 ms, so 10 s of silence means a worker
    /// that is livelocked, swapped out, or quietly dead).
    pub const DEFAULT_STALL_AFTER: Duration = Duration::from_secs(10);

    /// A coordinator for `workers` processes (min 1) writing to the
    /// default cache dir and spawning the current executable. The
    /// stall window honours [`STALL_TIMEOUT_ENV`] when set (seconds,
    /// fractional allowed); `--stall-timeout` /
    /// [`Coordinator::with_stall_after`] override it.
    pub fn new(workers: usize) -> Self {
        let stall_after = std::env::var(STALL_TIMEOUT_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s > 0.0)
            .map(Duration::from_secs_f64)
            .unwrap_or(Self::DEFAULT_STALL_AFTER)
            .max(Duration::from_millis(100));
        Coordinator {
            workers: workers.max(1),
            threads_per_worker: None,
            cache_dir: PathBuf::from(crate::sweep::SweepEngine::DEFAULT_CACHE_DIR),
            worker_exe: None,
            worker_env: Vec::new(),
            stall_after,
            quiet: false,
            auto_compact: None,
            map_search: false,
        }
    }

    /// Pass `--map-search` to every spawned worker: each one annotates
    /// its own slice after flushing it, seeding the shared mapping memo
    /// in parallel so the coordinator's post-merge annotation runs
    /// warm.
    pub fn with_map_search(mut self, on: bool) -> Self {
        self.map_search = on;
        self
    }

    /// Opt in to post-merge store compaction: after the merge
    /// completes (every worker done, every straggler recovered), fold
    /// the CSV tail into a binary generation if it holds at least
    /// `threshold` rows. The coordinator is the natural compaction
    /// point of a distributed run — workers are gone, so the fold
    /// races nobody but the next run's appenders, which the shard
    /// locks already handle.
    pub fn with_auto_compact(mut self, threshold: Option<usize>) -> Self {
        self.auto_compact = threshold;
        self
    }

    /// Flag a running worker as stalled after this much heartbeat
    /// silence (see [`Coordinator::DEFAULT_STALL_AFTER`]).
    pub fn with_stall_after(mut self, window: Duration) -> Self {
        self.stall_after = window.max(Duration::from_millis(100));
        self
    }

    /// Suppress the live per-worker stderr progress line
    /// (`dse --quiet`). Stall warnings still print — silence about a
    /// wedged worker is exactly what heartbeats exist to prevent.
    pub fn with_quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Share the store under `dir` (must be reachable by every worker).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = dir.into();
        self
    }

    /// Threads per worker process (default: cores / workers, min 1).
    pub fn with_threads_per_worker(mut self, threads: usize) -> Self {
        self.threads_per_worker = Some(threads.max(1));
        self
    }

    /// Spawn `exe` instead of `std::env::current_exe()` — the hook that
    /// lets non-`dse` binaries (tests, benches) drive the process
    /// backend.
    pub fn with_worker_exe(mut self, exe: impl Into<PathBuf>) -> Self {
        self.worker_exe = Some(exe.into());
        self
    }

    /// Set an environment variable on every spawned worker (initial and
    /// replacement alike). Tests use this to arm per-worker fault plans
    /// without mutating the coordinator's own environment.
    pub fn with_worker_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.worker_env.push((key.into(), value.into()));
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Threads each worker will be told to use.
    pub fn threads_per_worker(&self) -> usize {
        self.threads_per_worker.unwrap_or_else(|| (pool::available_threads() / self.workers).max(1))
    }

    /// The shared store location.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// Run `spec` across `workers` processes and merge the results from
    /// the shared store (see the module docs for the full protocol).
    ///
    /// The merged points are bit-identical to a single-process run:
    /// every result either round-tripped through the store (whose CSV
    /// encoding is exact) or was evaluated by the deterministic
    /// emulator directly.
    pub fn run(&self, spec: &SweepSpec) -> Result<DistribOutcome, DistribError> {
        match self.run_inner(spec, &|| false)? {
            DistribRun::Complete(outcome) => Ok(outcome),
            DistribRun::Interrupted(_) => unreachable!("cancellation disabled"),
        }
    }

    /// [`Coordinator::run`] with a drain hook: when `cancel` fires the
    /// coordinator drops [`DRAIN_FILE`] into the store dir, the
    /// workers notice within a heartbeat, finish their in-flight
    /// points, flush, and exit [`EXIT_INTERRUPTED`]; no replacements
    /// are spawned and the merge step's local recovery is skipped —
    /// the drain record says what a `dse resume` still owes.
    pub fn run_draining(
        &self,
        spec: &SweepSpec,
        cancel: impl Fn() -> bool,
    ) -> Result<DistribRun, DistribError> {
        self.run_inner(spec, &cancel)
    }

    fn run_inner(
        &self,
        spec: &SweepSpec,
        cancel: &dyn Fn() -> bool,
    ) -> Result<DistribRun, DistribError> {
        drive(
            spec,
            &self.cache_dir,
            self.workers * self.threads_per_worker(),
            self.auto_compact,
            cancel,
            || self.spawn_and_wait(spec, cancel),
        )
    }

    /// Ship the spec file, spawn every worker, and supervise the slice
    /// *leases* to completion: poll each child with `try_wait`, tail
    /// the shared heartbeat file in between, and revoke the lease of a
    /// worker that stalls — silent heartbeats *or* a frozen done-count
    /// past the stall window — by SIGKILLing it and re-leasing its
    /// slice to a replacement worker (bounded by [`MAX_LEASE_GRANTS`]).
    /// Exit status + last-heartbeat age are recorded per worker. Worker
    /// failure is *reported*, not fatal — the merge step recovers
    /// whatever no leaseholder delivered.
    fn spawn_and_wait(
        &self,
        spec: &SweepSpec,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Vec<WorkerReport>, DistribError> {
        let exe = match &self.worker_exe {
            Some(exe) => exe.clone(),
            None => std::env::current_exe()?,
        };
        // The spec file lives next to the store: a location every
        // worker can reach by construction, cleaned up after the join.
        // The name carries pid *and* a per-call counter so concurrent
        // Coordinator::run calls in one process cannot overwrite (or
        // clean up) each other's spec file.
        static SPEC_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::fs::create_dir_all(&self.cache_dir)?;
        // A drain flag left by an interrupted earlier run must not
        // drain *this* run's workers at birth.
        let drain_path = self.cache_dir.join(DRAIN_FILE);
        let _ = std::fs::remove_file(&drain_path);
        let seq = SPEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let spec_path =
            self.cache_dir.join(format!("distrib-spec-{}-{seq}.toml", std::process::id()));
        std::fs::write(&spec_path, spec.to_toml())?;
        let threads = self.threads_per_worker();
        let spawn_worker = |shard: usize| -> io::Result<Child> {
            let mut cmd = Command::new(&exe);
            cmd.arg("--worker-shard")
                .arg(format!("{shard}/{}", self.workers))
                .arg("--spec")
                .arg(&spec_path)
                .arg("--cache-dir")
                .arg(&self.cache_dir)
                .arg("--threads")
                .arg(threads.to_string());
            if self.map_search {
                cmd.arg("--map-search");
            }
            let child = cmd
                .envs(self.worker_env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()?;
            obs_counters::distrib_workers_spawned().incr();
            Ok(child)
        };

        struct Supervised {
            shard: usize,
            child: Option<Child>, // taken once reaped
            pid: Option<u32>,
            report: Option<WorkerReport>,
            lease_started: Instant,
            grants: u32,
            last_done: Option<u64>,
            progress_at: Instant,
            stalled: bool,
            lease_revoked: bool,
        }
        let mut supervised: Vec<Supervised> = (0..self.workers)
            .map(|shard| {
                let (child, report) = match spawn_worker(shard) {
                    Ok(c) => {
                        ng_obs::emit_lease(
                            shard,
                            "grant",
                            &format!(
                                "initial slice lease (stall window {:.1}s)",
                                self.stall_after.as_secs_f64()
                            ),
                        );
                        (Some(c), None)
                    }
                    Err(e) => (None, Some(WorkerReport::no_process(shard, format!("spawn: {e}")))),
                };
                Supervised {
                    shard,
                    pid: child.as_ref().map(Child::id),
                    child,
                    report,
                    lease_started: Instant::now(),
                    grants: 1,
                    last_done: None,
                    progress_at: Instant::now(),
                    stalled: false,
                    lease_revoked: false,
                }
            })
            .collect();

        // Drain the pipes, then reap. Safe order in both reap paths:
        // after a clean exit or a SIGKILL the writer is gone, so
        // read-to-EOF cannot block (workers write one summary line).
        fn reap(mut child: Child) -> (Option<i32>, bool, String, String) {
            let mut stdout = String::new();
            let mut stderr = String::new();
            if let Some(mut out) = child.stdout.take() {
                let _ = out.read_to_string(&mut stdout);
            }
            if let Some(mut err) = child.stderr.take() {
                let _ = err.read_to_string(&mut stderr);
            }
            match child.wait() {
                Ok(status) => (status.code(), status.success(), stdout, stderr),
                Err(_) => (None, false, stdout, stderr),
            }
        }

        let mut beats = HeartbeatTail::new(self.cache_dir.join(HEARTBEAT_FILE));
        let draw_progress = ng_obs::stderr_wants_progress(self.quiet);
        let mut drew = false;
        let mut last_draw = Instant::now();
        let mut draining = false;
        loop {
            if !draining && cancel() {
                // Forward the drain through the store — the channel
                // every worker already watches. From here on leases
                // are not re-granted: a stalled worker is still
                // killed, but its slice waits for `dse resume` instead
                // of a replacement or the merge step.
                draining = true;
                if let Err(e) = std::fs::write(&drain_path, b"drain\n") {
                    // No flag, no graceful path: the workers would
                    // never notice. Kill them; the store keeps what
                    // they already appended.
                    eprintln!("dse: could not write drain flag ({e}); killing workers instead");
                    for s in supervised.iter_mut() {
                        if let Some(child) = s.child.as_mut() {
                            let _ = child.kill();
                        }
                    }
                } else {
                    eprintln!(
                        "dse: draining workers (each finishes its current point and flushes)"
                    );
                }
                ng_obs::emit_meta("distrib.drain", "coordinator drain: flag written, respawns off");
            }
            beats.poll();
            let mut live = 0;
            for s in supervised.iter_mut() {
                let Some(child) = s.child.as_mut() else { continue };
                let pid = child.id();
                match child.try_wait() {
                    Ok(Some(_)) => {
                        let child = s.child.take().expect("present: matched above");
                        let (exit, ok, stdout, stderr) = reap(child);
                        s.report = Some(WorkerReport {
                            shard: s.shard,
                            ok,
                            stdout: stdout.trim().to_string(),
                            stderr: stderr.trim().to_string(),
                            pid: Some(pid),
                            exit,
                            last_heartbeat: beats.last_of(pid),
                            stalled: s.stalled,
                            lease_revoked: s.lease_revoked,
                        });
                    }
                    Ok(None) => {
                        // Lease check. Two stall signals: heartbeat
                        // silence (dead beat thread, delayed appends)
                        // and a frozen done-count (the beat thread
                        // survives a hung evaluation pool and keeps
                        // appending unchanged progress).
                        let silence = beats
                            .observed_at(pid)
                            .map(|at| at.elapsed())
                            .unwrap_or_else(|| s.lease_started.elapsed());
                        let done_now = beats.last_of(pid).map(|hb| hb.done);
                        if done_now != s.last_done {
                            s.last_done = done_now;
                            s.progress_at = Instant::now();
                        }
                        let frozen =
                            done_now.is_some() && s.progress_at.elapsed() > self.stall_after;
                        if silence <= self.stall_after && !frozen {
                            live += 1;
                            continue;
                        }
                        // Lease expired: kill the holder...
                        s.stalled = true;
                        s.lease_revoked = true;
                        let why = if frozen {
                            format!(
                                "no progress for {:.1}s (window {:.1}s)",
                                s.progress_at.elapsed().as_secs_f64(),
                                self.stall_after.as_secs_f64(),
                            )
                        } else {
                            format!(
                                "silent for {:.1}s (window {:.1}s)",
                                silence.as_secs_f64(),
                                self.stall_after.as_secs_f64(),
                            )
                        };
                        obs_counters::distrib_leases_expired().incr();
                        ng_obs::emit_lease(s.shard, "expire", &why);
                        eprintln!(
                            "dse: worker {} (pid {pid}) lease expired: {why}; killing it",
                            s.shard
                        );
                        let mut child = s.child.take().expect("present: matched above");
                        let _ = child.kill();
                        obs_counters::distrib_workers_killed().incr();
                        ng_obs::emit_lease(s.shard, "kill", "SIGKILL after lease expiry");
                        let (exit, _, stdout, stderr) = reap(child);
                        s.report = Some(WorkerReport {
                            shard: s.shard,
                            ok: false,
                            stdout: stdout.trim().to_string(),
                            stderr: stderr.trim().to_string(),
                            pid: Some(pid),
                            exit,
                            last_heartbeat: beats.last_of(pid),
                            stalled: true,
                            lease_revoked: true,
                        });
                        // ... and re-lease the slice to a replacement,
                        // which resumes from the store (every point the
                        // dead holder persisted is a hit) — unless the
                        // grant budget is spent (slice falls to the
                        // merge step) or the run is draining (slice
                        // waits for `dse resume`).
                        if draining {
                            ng_obs::emit_lease(
                                s.shard,
                                "local",
                                "drain in progress; slice left for `dse resume`",
                            );
                            continue;
                        }
                        if s.grants >= MAX_LEASE_GRANTS {
                            ng_obs::emit_lease(
                                s.shard,
                                "local",
                                "lease grants exhausted; slice falls to the merge step",
                            );
                            continue;
                        }
                        match spawn_worker(s.shard) {
                            Ok(c) => {
                                s.grants += 1;
                                obs_counters::distrib_leases_reassigned().incr();
                                ng_obs::emit_lease(
                                    s.shard,
                                    "reassign",
                                    &format!(
                                        "grant {} of {MAX_LEASE_GRANTS} (stall window {:.1}s)",
                                        s.grants,
                                        self.stall_after.as_secs_f64()
                                    ),
                                );
                                eprintln!(
                                    "dse: worker {}: slice re-leased to replacement pid {}",
                                    s.shard,
                                    c.id(),
                                );
                                s.pid = Some(c.id());
                                s.child = Some(c);
                                s.lease_started = Instant::now();
                                s.progress_at = Instant::now();
                                s.last_done = None;
                                s.stalled = false;
                                s.report = None;
                                live += 1;
                            }
                            Err(e) => {
                                eprintln!(
                                    "dse: worker {}: could not spawn replacement: {e}",
                                    s.shard
                                );
                                ng_obs::emit_lease(
                                    s.shard,
                                    "local",
                                    "respawn failed; slice falls to the merge step",
                                );
                            }
                        }
                    }
                    Err(e) => {
                        s.child = None;
                        s.report =
                            Some(WorkerReport::no_process(s.shard, format!("wait failed: {e}")));
                    }
                }
            }
            if live == 0 {
                break;
            }
            // Live per-worker progress: one `\r`-rewritten stderr line
            // (same contract as the single-process meter — stdout is
            // never touched), fed purely by the heartbeat tail.
            if draw_progress && last_draw.elapsed() >= Duration::from_millis(200) {
                last_draw = Instant::now();
                let parts: Vec<String> = supervised
                    .iter()
                    .map(|s| {
                        let progress = match (&s.report, s.pid.and_then(|p| beats.last_of(p))) {
                            (Some(r), _) if r.ok => "done".to_string(),
                            (Some(_), _) => "failed".to_string(),
                            (None, Some(hb)) => format!("{}/{}", hb.done, hb.total),
                            (None, None) => "-".to_string(),
                        };
                        format!("{}:{progress}", s.shard)
                    })
                    .collect();
                use std::io::Write as _;
                let line = format!("workers: {} ({live} live)", parts.join(" "));
                let mut err = io::stderr().lock();
                let _ = write!(err, "\r{line:<70}");
                let _ = err.flush();
                drew = true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if drew {
            use std::io::Write as _;
            let mut err = io::stderr().lock();
            let _ = write!(err, "\r{:<70}\r", "");
            let _ = err.flush();
        }
        let _ = std::fs::remove_file(&spec_path);
        let _ = std::fs::remove_file(&drain_path);
        Ok(supervised
            .into_iter()
            .map(|s| s.report.expect("every worker reaped or failed"))
            .collect())
    }
}

/// An incremental reader of the shared heartbeat file: keeps a byte
/// offset, parses only whole appended lines, and remembers the newest
/// heartbeat per writer pid (plus when it was *observed* — ages are
/// measured on the coordinator's clock, immune to cross-process clock
/// skew).
struct HeartbeatTail {
    path: PathBuf,
    offset: u64,
    latest: HashMap<u32, (Instant, WorkerHeartbeat)>,
}

impl HeartbeatTail {
    fn new(path: PathBuf) -> Self {
        // Start at the current end: heartbeats from earlier runs
        // sharing the store dir are history, not this run's workers —
        // and pids recycle.
        let offset = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        HeartbeatTail { path, offset, latest: HashMap::new() }
    }

    /// Read and fold any whole lines appended since the last poll.
    ///
    /// Tolerates the file being deleted or recreated mid-run (a user
    /// tidying the store dir, a rotation): on ENOENT the next poll
    /// simply re-opens whatever the workers recreate, and a file
    /// shorter than our offset means *this* inode restarted — rewind to
    /// its start instead of seeking past EOF and reading silence
    /// forever (which would stall-flag, and now kill, every healthy
    /// worker).
    fn poll(&mut self) {
        let Ok(mut file) = std::fs::File::open(&self.path) else { return };
        use std::io::Seek as _;
        if file.metadata().map(|m| m.len() < self.offset).unwrap_or(false) {
            self.offset = 0;
        }
        if file.seek(io::SeekFrom::Start(self.offset)).is_err() {
            return;
        }
        let mut chunk = String::new();
        if file.read_to_string(&mut chunk).is_err() || chunk.is_empty() {
            return;
        }
        // Only complete lines advance the offset; a torn tail (a worker
        // mid-append on a lock-less filesystem) is re-read next poll.
        let Some(complete) = chunk.rfind('\n') else { return };
        self.offset += complete as u64 + 1;
        for ev in ng_obs::Ledger::parse(&chunk[..=complete]).of_kind("hb") {
            let (Some(pid), Some(done), Some(total)) =
                (ev.num_field("pid"), ev.num_field("done"), ev.num_field("total"))
            else {
                continue;
            };
            obs_counters::distrib_heartbeats_seen().incr();
            let hb = WorkerHeartbeat {
                state: ev.str_field("state").unwrap_or("?").to_string(),
                done,
                total,
                age: Duration::ZERO,
            };
            self.latest.insert(pid as u32, (Instant::now(), hb));
        }
    }

    /// When the newest heartbeat of `pid` was observed.
    fn observed_at(&self, pid: u32) -> Option<Instant> {
        self.latest.get(&pid).map(|(at, _)| *at)
    }

    /// The newest heartbeat of `pid`, with its age filled in.
    fn last_of(&self, pid: u32) -> Option<WorkerHeartbeat> {
        self.latest.get(&pid).map(|(at, hb)| WorkerHeartbeat { age: at.elapsed(), ..hb.clone() })
    }
}

/// The shared coordinator driver: one store read up front (the
/// resumability accounting — what an earlier, possibly killed, run
/// already holds is a hit; everything the workers and the recovery path
/// produce is "evaluated" — and, on a fully warm store, the merge
/// itself), then `launch` the workers however the caller does it
/// (spawned processes or scoped threads), then merge-and-recover.
/// `total_threads` is reporting metadata for [`SweepStats::threads`].
fn drive(
    spec: &SweepSpec,
    cache_dir: &Path,
    total_threads: usize,
    auto_compact: Option<usize>,
    cancel: &dyn Fn() -> bool,
    launch: impl FnOnce() -> Result<Vec<WorkerReport>, DistribError>,
) -> Result<DistribRun, DistribError> {
    spec.validate()?;
    let _span = ng_obs::span("distrib");
    let started = Instant::now();
    let cache = EvalCache::new(cache_dir);
    let points = spec.points();
    let slots = {
        let _span = ng_obs::span("lookup");
        cache.lookup(&points)
    };
    let pre_hits = slots.iter().filter(|s| s.is_some()).count();
    // Coordinator-side sweep accounting: together with the merge step's
    // hits and straggler evaluations this closes the per-process
    // `cache_hits + fresh_evals == points` invariant the trace checker
    // enforces (workers count their own slices in their own processes).
    obs_counters::sweep_points().add(points.len() as u64);
    obs_counters::sweep_cache_hits().add(pre_hits as u64);

    let (workers, merged, recovered) = if pre_hits == points.len() {
        // Fully warm: nothing to launch, and the lookup already *is*
        // the merge — don't re-read the store.
        let merged: Vec<EvaluatedPoint> = slots.into_iter().map(|s| s.expect("all hits")).collect();
        (Vec::new(), merged, 0)
    } else {
        let missing: Vec<DesignPoint> =
            points.iter().zip(&slots).filter(|(_, hit)| hit.is_none()).map(|(p, _)| *p).collect();
        if cancel() {
            // Signal before any worker spawned: nothing new delivered.
            return Ok(DistribRun::Interrupted(DrainedDistrib {
                total_points: points.len(),
                delivered: pre_hits,
                workers: Vec::new(),
                cache_path: cache.store_dir(),
            }));
        }
        let workers = {
            let _span = ng_obs::span("launch");
            launch()?
        };
        if cancel() {
            // The drain settled: count what the workers flushed (a
            // second lookup over the formerly-missing points) but do
            // NOT evaluate the remainder — that is `dse resume`'s job,
            // and the user asked us to stop.
            let delivered_now = cache.lookup(&missing).iter().filter(|s| s.is_some()).count();
            obs_counters::sweep_cache_hits().add(delivered_now as u64);
            return Ok(DistribRun::Interrupted(DrainedDistrib {
                total_points: points.len(),
                delivered: pre_hits + delivered_now,
                workers,
                cache_path: cache.store_dir(),
            }));
        }
        let mut slots = slots;
        // Merge reuses the pre-launch hits: only the formerly-missing
        // points are re-read (the workers just appended them), and any
        // straggler a dead worker failed to deliver is evaluated here —
        // with every core, since the workers are gone by merge time.
        let recovered = {
            let _span = ng_obs::span("merge");
            fill_missing_slots(&cache, &missing, &mut slots, pool::available_threads())?
        };
        let merged = slots.into_iter().map(|s| s.expect("every slot filled")).collect();
        (workers, merged, recovered)
    };
    // Post-merge compaction (opt-in): the quiet moment of a
    // distributed run — no workers left to race. Failure downgrades;
    // the CSV WAL stays authoritative either way.
    if let Some(threshold) = auto_compact {
        if cache.tail_row_estimate() >= threshold {
            if let Err(e) = crate::compact::compact(&cache) {
                eprintln!("dse: post-merge compaction failed (store still serves): {e}");
            }
        }
    }
    let stats = SweepStats {
        total_points: merged.len(),
        evaluated: merged.len() - pre_hits,
        cache_hits: pre_hits,
        cache_hit: pre_hits == merged.len(),
        threads: total_threads,
        wall: started.elapsed(),
    };
    Ok(DistribRun::Complete(DistribOutcome {
        outcome: SweepOutcome {
            spec: spec.clone(),
            points: merged,
            stats,
            cache_path: Some(cache.store_dir()),
        },
        workers,
        recovered,
    }))
}

/// Assemble a spec's full result set out of the shared store,
/// evaluating and appending any stragglers locally — the coordinator's
/// merge step, and the whole crash-recovery path. Returns the points in
/// spec order plus how many had to be recovered.
pub fn merge_and_recover(
    spec: &SweepSpec,
    cache: &EvalCache,
    threads: usize,
) -> Result<(Vec<EvaluatedPoint>, usize), DistribError> {
    let points = spec.points();
    let mut slots: Vec<Option<EvaluatedPoint>> = vec![None; points.len()];
    let recovered = fill_missing_slots(cache, &points, &mut slots, threads)?;
    let merged = slots.into_iter().map(|s| s.expect("every slot filled")).collect();
    Ok((merged, recovered))
}

/// Fill every `None` slot from its matching point in `missing` (the
/// i-th missing point corresponds to the i-th `None` slot, in order):
/// look the point up in the store once more — workers may have
/// appended it since the caller's partition — and evaluate it locally
/// if it is still absent, appending the fresh rows back. Only the
/// shards the missing keys land in are read. Returns how many points
/// had to be evaluated locally.
fn fill_missing_slots(
    cache: &EvalCache,
    missing: &[DesignPoint],
    slots: &mut [Option<EvaluatedPoint>],
    threads: usize,
) -> Result<usize, DistribError> {
    let looked_up = cache.lookup(missing);
    let stragglers: Vec<DesignPoint> =
        missing.iter().zip(&looked_up).filter(|(_, hit)| hit.is_none()).map(|(p, _)| *p).collect();
    let recovered = stragglers.len();
    // Second-lookup hits are worker deliveries; stragglers we evaluate
    // here are this process's fresh work (see the invariant note in
    // [`drive`]).
    obs_counters::sweep_cache_hits().add((missing.len() - recovered) as u64);
    obs_counters::sweep_fresh_evals().add(recovered as u64);
    obs_counters::distrib_recovered_points().add(recovered as u64);
    let fresh = evaluate_points(&stragglers, threads);
    if recovered > 0 {
        ng_obs::emit_meta(
            "distrib.recovery",
            &format!("{recovered} point(s) evaluated locally by the coordinator"),
        );
    }
    // The recovered results are already in memory and flow into the
    // merged outcome either way; persisting them back is a resume
    // optimisation, so a failing store (e.g. under an `append:io`
    // fault plan that outlasts the retry budget) downgrades to a
    // warning rather than failing a sweep whose answer is complete.
    if let Err(e) = cache.append(&fresh) {
        eprintln!("dse: warning: could not persist {} recovered point(s): {e}", fresh.len());
    }
    let mut looked_up = looked_up.into_iter();
    let mut fresh = fresh.into_iter();
    for slot in slots.iter_mut().filter(|s| s.is_none()) {
        let hit = looked_up.next().expect("one lookup per missing slot");
        *slot = Some(hit.unwrap_or_else(|| fresh.next().expect("one evaluation per straggler")));
    }
    Ok(recovered)
}

/// Drive the full worker protocol on in-process threads: `workers`
/// concurrent [`run_worker_slice`] calls against one store, then the
/// coordinator merge. Exercises every concurrency property of the
/// store (locked appends, header race, torn-tail repair) without
/// process-spawn overhead — the distributed form `bench_dse` tracks.
pub fn run_sharded_in_process(
    spec: &SweepSpec,
    workers: usize,
    threads_per_worker: usize,
    cache_dir: &Path,
) -> Result<DistribOutcome, DistribError> {
    let workers = workers.max(1);
    let run = drive(spec, cache_dir, workers * threads_per_worker, None, &|| false, || {
        let summaries: Vec<Result<WorkerSummary, DistribError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|shard| {
                    scope.spawn(move || {
                        run_worker_slice(spec, shard, workers, cache_dir, threads_per_worker)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread never panics")).collect()
        });
        // Mirror the process backend: a failed worker is reported and
        // its slice recovered, not fatal.
        Ok(summaries
            .into_iter()
            .enumerate()
            .map(|(shard, r)| match r {
                Ok(s) => WorkerReport {
                    stdout: s.to_string(),
                    ok: true,
                    ..WorkerReport::no_process(shard, String::new())
                },
                Err(e) => WorkerReport::no_process(shard, e.to_string()),
            })
            .collect())
    })?;
    match run {
        DistribRun::Complete(outcome) => Ok(outcome),
        DistribRun::Interrupted(_) => unreachable!("cancellation disabled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepEngine;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-distrib-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shards_partition_the_spec() {
        let points = SweepSpec::quick().points();
        for of in [1, 2, 3, 7] {
            let slices: Vec<Vec<DesignPoint>> =
                (0..of).map(|s| shard_points(&points, s, of)).collect();
            let mut union: Vec<DesignPoint> = slices.concat();
            union.sort_by_key(|p| p.index);
            assert_eq!(union, points, "of={of}: disjoint slices covering the spec");
            // Round-robin balance: slice sizes differ by at most one.
            let sizes: Vec<usize> = slices.iter().map(Vec::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "of={of}: {sizes:?}");
        }
    }

    #[test]
    fn shard_arg_parsing() {
        assert_eq!(parse_shard_arg("0/3"), Some((0, 3)));
        assert_eq!(parse_shard_arg("2/3"), Some((2, 3)));
        assert_eq!(parse_shard_arg(" 1 / 4 "), Some((1, 4)));
        assert_eq!(parse_shard_arg("3/3"), None, "shard must be < of");
        assert_eq!(parse_shard_arg("0/0"), None);
        assert_eq!(parse_shard_arg("1"), None);
        assert_eq!(parse_shard_arg("a/b"), None);
    }

    #[test]
    fn worker_slices_compose_into_the_exact_sweep() {
        let dir = tmpdir("compose");
        let spec = SweepSpec::quick();
        for shard in 0..3 {
            let summary = run_worker_slice(&spec, shard, 3, &dir, 2).unwrap();
            assert_eq!(summary.cache_hits, 0, "cold store");
            assert_eq!(summary.evaluated, summary.points);
        }
        let cache = EvalCache::new(&dir);
        let (merged, recovered) = merge_and_recover(&spec, &cache, 1).unwrap();
        assert_eq!(recovered, 0, "all three slices delivered");
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(merged, reference.points, "bit-identical to single-process");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_recovers_a_dead_workers_slice() {
        // Workers 0 and 2 of 3 delivered; worker 1 "was killed". The
        // coordinator's merge must evaluate exactly that slice itself
        // and still produce the full, identical result set.
        let dir = tmpdir("recover");
        let spec = SweepSpec::quick();
        run_worker_slice(&spec, 0, 3, &dir, 1).unwrap();
        run_worker_slice(&spec, 2, 3, &dir, 1).unwrap();
        let cache = EvalCache::new(&dir);
        let dead_slice = shard_points(&spec.points(), 1, 3).len();
        let (merged, recovered) = merge_and_recover(&spec, &cache, 2).unwrap();
        assert_eq!(recovered, dead_slice, "exactly the dead worker's points");
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(merged, reference.points);
        // The recovery appended its work: a second merge is all hits.
        let (again, recovered) = merge_and_recover(&spec, &cache, 1).unwrap();
        assert_eq!(recovered, 0);
        assert_eq!(again, merged);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_process_sharded_run_matches_single_process() {
        let dir = tmpdir("in-process");
        let spec = SweepSpec::quick();
        let distributed = run_sharded_in_process(&spec, 3, 1, &dir).unwrap();
        assert_eq!(distributed.recovered, 0);
        assert!(distributed.workers.iter().all(|w| w.ok));
        assert_eq!(distributed.outcome.stats.evaluated, spec.point_count());
        assert_eq!(distributed.outcome.stats.cache_hits, 0);
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(distributed.outcome.points, reference.points);
        // Resume: a second distributed run is a pure store hit.
        let warm = run_sharded_in_process(&spec, 3, 1, &dir).unwrap();
        assert!(warm.outcome.stats.cache_hit);
        assert_eq!(warm.outcome.stats.evaluated, 0);
        assert_eq!(warm.outcome.points, reference.points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_recovers_when_all_workers_died() {
        // The worst crash: every worker was killed before delivering a
        // single row. The merge step alone must still produce the
        // complete, bit-identical sweep (and persist it for next time).
        let dir = tmpdir("all-dead");
        let spec = SweepSpec::quick();
        let cache = EvalCache::new(&dir);
        let (merged, recovered) = merge_and_recover(&spec, &cache, 2).unwrap();
        assert_eq!(recovered, spec.point_count(), "nothing was delivered");
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(merged, reference.points);
        // The recovery pass warmed the store: a re-merge is all hits.
        let (again, recovered) = merge_and_recover(&spec, &cache, 1).unwrap();
        assert_eq!(recovered, 0);
        assert_eq!(again, merged);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_tail_rewinds_when_the_file_is_recreated() {
        let dir = tmpdir("hb-recreate");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heartbeats.jsonl");
        let hb = |pid: u32, done: u64| {
            format!("{{\"ev\":\"hb\",\"ts\":1,\"pid\":{pid},\"state\":\"eval\",\"done\":{done},\"total\":9}}\n")
        };
        fs::write(&path, hb(100, 1)).unwrap();
        let mut tail = HeartbeatTail::new(path.clone());
        // `new` starts at EOF: pre-existing history is not this run's.
        tail.poll();
        assert!(tail.last_of(100).is_none());
        fs::write(&path, [hb(100, 1), hb(100, 2)].concat()).unwrap();
        tail.poll();
        assert_eq!(tail.last_of(100).unwrap().done, 2);
        // The file is deleted and recreated shorter than our offset (a
        // user tidying the store dir mid-run). The tail must rewind and
        // read the new content instead of seeking past EOF forever.
        fs::remove_file(&path).unwrap();
        tail.poll();
        fs::write(&path, hb(200, 5)).unwrap();
        tail.poll();
        assert_eq!(tail.last_of(200).unwrap().done, 5, "rewound after recreation");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exit_codes_name_their_causes() {
        assert!(exit_code_cause(EXIT_USAGE).unwrap().contains("spec or usage"));
        assert!(exit_code_cause(EXIT_STORE_APPEND).unwrap().contains("persist"));
        assert!(exit_code_cause(EXIT_CHECK_FAILED).unwrap().contains("--check"));
        assert!(exit_code_cause(EXIT_INTERRUPTED).unwrap().contains("resume"));
        assert!(exit_code_cause(EXIT_KILLED).unwrap().contains("second signal"));
        assert_eq!(exit_code_cause(0), None);
        assert_eq!(exit_code_cause(1), None);
        // The codes are pairwise distinct — one table, no aliases.
        let codes =
            [EXIT_USAGE, EXIT_STORE_APPEND, EXIT_CHECK_FAILED, EXIT_INTERRUPTED, EXIT_KILLED];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn drained_worker_flushes_and_reports_interrupted() {
        // Drain a worker slice from the first point: it finishes the
        // in-flight points, appends them, and reports interrupted; a
        // follow-up full run pays only the remainder, bit-identical.
        let dir = tmpdir("drain-worker");
        let spec = SweepSpec::quick();
        let summary = run_worker_slice_draining(&spec, 0, 1, &dir, 2, &|| true).unwrap();
        assert!(summary.interrupted);
        assert!(summary.evaluated < summary.points, "drained before the tail");
        let resumed = run_worker_slice(&spec, 0, 1, &dir, 2).unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.cache_hits, summary.evaluated, "flushed points are hits");
        assert_eq!(resumed.cache_hits + resumed.evaluated, resumed.points);
        let cache = EvalCache::new(&dir);
        let (merged, recovered) = merge_and_recover(&spec, &cache, 1).unwrap();
        assert_eq!(recovered, 0);
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(merged, reference.points, "drain + resume is bit-identical");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_flag_in_store_dir_drains_a_worker() {
        // The coordinator's drain travels through the store: a worker
        // that finds DRAIN_FILE mid-slice stops on its heartbeat
        // cadence. heartbeat:delay=0 isn't needed — the flag pre-dates
        // the run, so the first beat sees it.
        let dir = tmpdir("drain-flag");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(DRAIN_FILE), b"drain\n").unwrap();
        let spec = SweepSpec::quick();
        // Single thread so the beat (every 200ms) can fire before the
        // microsecond-scale slice finishes is not guaranteed — so this
        // asserts only the *mechanism*: interrupted implies a short
        // evaluation, and the summary always accounts for every point.
        let summary = run_worker_slice(&spec, 0, 1, &dir, 1).unwrap();
        if summary.interrupted {
            assert!(summary.evaluated < summary.points);
        } else {
            assert_eq!(summary.evaluated, summary.points);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_worker_counts_are_rejected_or_clamped() {
        let dir = tmpdir("degenerate");
        let spec = SweepSpec::quick();
        assert!(matches!(
            run_worker_slice(&spec, 5, 3, &dir, 1),
            Err(DistribError::Shard { shard: 5, of: 3 })
        ));
        // Coordinator clamps 0 workers to 1 rather than dividing by it.
        assert_eq!(Coordinator::new(0).workers(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
