//! Multi-process sharded sweep backend.
//!
//! PR 4 made one process fast (~240k points/sec on a warm model); this
//! module is the bridge to the ROADMAP's cluster-scale north star: a
//! sweep partitioned over *processes* that coordinate purely through
//! the (now multi-writer-safe) point store.
//!
//! ## Protocol
//!
//! * **Partition** — [`shard_points`]: worker `i` of `N` owns the
//!   points whose canonical spec index `≡ i (mod N)`. Round-robin over
//!   the deterministic enumeration order balances apps and axis
//!   extremes across workers and depends on nothing but `(spec, i, N)`,
//!   so any party can recompute any slice.
//! * **Worker** — [`run_worker_slice`] (the `dse --worker-shard i/N`
//!   mode): enumerate the spec, keep the slice, serve what the store
//!   already has, evaluate the rest on the in-process pool, and append
//!   the fresh rows back. The store *is* the result channel — a worker
//!   whose append fails exits non-zero, because results it cannot
//!   persist are results the coordinator will never see.
//! * **Coordinator** — [`Coordinator::run`] (the `dse --workers N`
//!   mode): resolve the spec, ship it to workers as a `to_toml()` file
//!   (workers re-parse rather than trusting argv to carry eleven
//!   axes), spawn `N` child processes of the current executable, wait,
//!   then merge by looking every point up in the store.
//! * **Crash recovery** — any point still missing after the workers
//!   exit (a killed worker, a torn row) is evaluated by the
//!   coordinator itself and appended, so the merged outcome is always
//!   complete and bit-identical to a single-process run. Resumability
//!   falls out of the same path: a re-run after `kill -9` finds the
//!   dead run's appended points as hits and pays only the delta.
//!
//! [`run_sharded_in_process`] drives the identical
//! slice/append/merge protocol on worker *threads* — the form
//! `bench_dse` measures and the stress tests hammer, with no process
//! spawn in the loop.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use crate::cache::EvalCache;
use crate::pool;
use crate::spec::{DesignPoint, SpecError, SweepSpec};
use crate::sweep::{evaluate_points, EvaluatedPoint, SweepOutcome, SweepStats};

/// Error raised by the distributed backend.
#[derive(Debug)]
pub enum DistribError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A shard argument is out of range (`shard` must be `< of`,
    /// `of ≥ 1`).
    Shard {
        /// The worker's shard index.
        shard: usize,
        /// The shard count.
        of: usize,
    },
    /// Spawning a worker, shipping the spec file, or persisting results
    /// failed.
    Io(io::Error),
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Spec(e) => write!(f, "{e}"),
            DistribError::Shard { shard, of } => {
                write!(f, "worker shard {shard}/{of} out of range (need 0 <= shard < of)")
            }
            DistribError::Io(e) => write!(f, "distributed sweep i/o: {e}"),
        }
    }
}

impl std::error::Error for DistribError {}

impl From<SpecError> for DistribError {
    fn from(e: SpecError) -> Self {
        DistribError::Spec(e)
    }
}

impl From<io::Error> for DistribError {
    fn from(e: io::Error) -> Self {
        DistribError::Io(e)
    }
}

/// Parse a `--worker-shard` operand of the form `i/N`.
pub fn parse_shard_arg(s: &str) -> Option<(usize, usize)> {
    let (shard, of) = s.split_once('/')?;
    let (shard, of) = (shard.trim().parse().ok()?, of.trim().parse().ok()?);
    (shard < of).then_some((shard, of))
}

/// Worker `shard`'s slice of the canonical point order: every point
/// with `index ≡ shard (mod of)`. The union of all `of` slices is the
/// whole spec, the slices are disjoint, and each is computable from
/// `(spec, shard, of)` alone.
pub fn shard_points(points: &[DesignPoint], shard: usize, of: usize) -> Vec<DesignPoint> {
    points.iter().filter(|p| p.index % of == shard).copied().collect()
}

/// What one worker did, as reported by [`run_worker_slice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count.
    pub of: usize,
    /// Points in this worker's slice.
    pub points: usize,
    /// Slice points already in the store.
    pub cache_hits: usize,
    /// Slice points freshly evaluated (and appended).
    pub evaluated: usize,
}

impl fmt::Display for WorkerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {}/{}: {} points, {} hits, {} evaluated",
            self.shard, self.of, self.points, self.cache_hits, self.evaluated
        )
    }
}

/// Evaluate one worker's slice of `spec` and append the fresh results
/// to the shared store under `cache_dir`.
///
/// Unlike [`crate::sweep::SweepEngine`], an append failure here is an
/// *error*, not a downgrade: the store is how results reach the
/// coordinator.
pub fn run_worker_slice(
    spec: &SweepSpec,
    shard: usize,
    of: usize,
    cache_dir: &Path,
    threads: usize,
) -> Result<WorkerSummary, DistribError> {
    if shard >= of {
        return Err(DistribError::Shard { shard, of });
    }
    spec.validate()?;
    let slice = shard_points(&spec.points(), shard, of);
    let cache = EvalCache::new(cache_dir);
    let missing: Vec<DesignPoint> = spec_misses(&cache, &slice);
    let evaluated = evaluate_points(&missing, threads);
    cache.append(&evaluated)?;
    Ok(WorkerSummary {
        shard,
        of,
        points: slice.len(),
        cache_hits: slice.len() - missing.len(),
        evaluated: missing.len(),
    })
}

/// The subset of `points` the store cannot serve.
fn spec_misses(cache: &EvalCache, points: &[DesignPoint]) -> Vec<DesignPoint> {
    points
        .iter()
        .zip(cache.lookup(points))
        .filter(|(_, hit)| hit.is_none())
        .map(|(p, _)| *p)
        .collect()
}

/// How one spawned worker process ended.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's shard index.
    pub shard: usize,
    /// Whether the process exited successfully.
    pub ok: bool,
    /// The worker's stdout (its [`WorkerSummary`] line on success).
    pub stdout: String,
    /// The worker's stderr (diagnostics on failure).
    pub stderr: String,
}

/// A completed distributed sweep: the merged outcome plus per-worker
/// accounting.
#[derive(Debug)]
pub struct DistribOutcome {
    /// The merged result — point-for-point identical to a
    /// single-process [`crate::sweep::SweepEngine::run`] of the same
    /// spec.
    pub outcome: SweepOutcome,
    /// One report per spawned worker (empty for an in-process run).
    pub workers: Vec<WorkerReport>,
    /// Points the coordinator had to evaluate itself because no worker
    /// delivered them (crashed workers, torn rows). 0 on a clean run.
    pub recovered: usize,
}

/// The multi-process sweep coordinator: worker count, per-worker
/// threads, store location, and which executable to spawn.
#[derive(Debug, Clone)]
pub struct Coordinator {
    workers: usize,
    threads_per_worker: Option<usize>,
    cache_dir: PathBuf,
    worker_exe: Option<PathBuf>,
}

impl Coordinator {
    /// A coordinator for `workers` processes (min 1) writing to the
    /// default cache dir and spawning the current executable.
    pub fn new(workers: usize) -> Self {
        Coordinator {
            workers: workers.max(1),
            threads_per_worker: None,
            cache_dir: PathBuf::from(crate::sweep::SweepEngine::DEFAULT_CACHE_DIR),
            worker_exe: None,
        }
    }

    /// Share the store under `dir` (must be reachable by every worker).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = dir.into();
        self
    }

    /// Threads per worker process (default: cores / workers, min 1).
    pub fn with_threads_per_worker(mut self, threads: usize) -> Self {
        self.threads_per_worker = Some(threads.max(1));
        self
    }

    /// Spawn `exe` instead of `std::env::current_exe()` — the hook that
    /// lets non-`dse` binaries (tests, benches) drive the process
    /// backend.
    pub fn with_worker_exe(mut self, exe: impl Into<PathBuf>) -> Self {
        self.worker_exe = Some(exe.into());
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Threads each worker will be told to use.
    pub fn threads_per_worker(&self) -> usize {
        self.threads_per_worker.unwrap_or_else(|| (pool::available_threads() / self.workers).max(1))
    }

    /// The shared store location.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// Run `spec` across `workers` processes and merge the results from
    /// the shared store (see the module docs for the full protocol).
    ///
    /// The merged points are bit-identical to a single-process run:
    /// every result either round-tripped through the store (whose CSV
    /// encoding is exact) or was evaluated by the deterministic
    /// emulator directly.
    pub fn run(&self, spec: &SweepSpec) -> Result<DistribOutcome, DistribError> {
        drive(spec, &self.cache_dir, self.workers * self.threads_per_worker(), || {
            self.spawn_and_wait(spec)
        })
    }

    /// Ship the spec file, spawn every worker, and wait for all of
    /// them. Worker failure is *reported*, not fatal — the merge step
    /// recovers whatever a dead worker did not deliver.
    fn spawn_and_wait(&self, spec: &SweepSpec) -> Result<Vec<WorkerReport>, DistribError> {
        let exe = match &self.worker_exe {
            Some(exe) => exe.clone(),
            None => std::env::current_exe()?,
        };
        // The spec file lives next to the store: a location every
        // worker can reach by construction, cleaned up after the join.
        // The name carries pid *and* a per-call counter so concurrent
        // Coordinator::run calls in one process cannot overwrite (or
        // clean up) each other's spec file.
        static SPEC_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::fs::create_dir_all(&self.cache_dir)?;
        let seq = SPEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let spec_path =
            self.cache_dir.join(format!("distrib-spec-{}-{seq}.toml", std::process::id()));
        std::fs::write(&spec_path, spec.to_toml())?;
        let threads = self.threads_per_worker();

        let spawned: Vec<(usize, io::Result<Child>)> = (0..self.workers)
            .map(|shard| {
                let child = Command::new(&exe)
                    .arg("--worker-shard")
                    .arg(format!("{shard}/{}", self.workers))
                    .arg("--spec")
                    .arg(&spec_path)
                    .arg("--cache-dir")
                    .arg(&self.cache_dir)
                    .arg("--threads")
                    .arg(threads.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::piped())
                    .spawn();
                (shard, child)
            })
            .collect();

        let mut reports = Vec::with_capacity(self.workers);
        for (shard, child) in spawned {
            let report = match child.and_then(|c| c.wait_with_output()) {
                Ok(out) => WorkerReport {
                    shard,
                    ok: out.status.success(),
                    stdout: String::from_utf8_lossy(&out.stdout).trim().to_string(),
                    stderr: String::from_utf8_lossy(&out.stderr).trim().to_string(),
                },
                Err(e) => WorkerReport {
                    shard,
                    ok: false,
                    stdout: String::new(),
                    stderr: format!("spawn/wait failed: {e}"),
                },
            };
            reports.push(report);
        }
        let _ = std::fs::remove_file(&spec_path);
        Ok(reports)
    }
}

/// The shared coordinator driver: one store read up front (the
/// resumability accounting — what an earlier, possibly killed, run
/// already holds is a hit; everything the workers and the recovery path
/// produce is "evaluated" — and, on a fully warm store, the merge
/// itself), then `launch` the workers however the caller does it
/// (spawned processes or scoped threads), then merge-and-recover.
/// `total_threads` is reporting metadata for [`SweepStats::threads`].
fn drive(
    spec: &SweepSpec,
    cache_dir: &Path,
    total_threads: usize,
    launch: impl FnOnce() -> Result<Vec<WorkerReport>, DistribError>,
) -> Result<DistribOutcome, DistribError> {
    spec.validate()?;
    let started = Instant::now();
    let cache = EvalCache::new(cache_dir);
    let points = spec.points();
    let slots = cache.lookup(&points);
    let pre_hits = slots.iter().filter(|s| s.is_some()).count();

    let (workers, merged, recovered) = if pre_hits == points.len() {
        // Fully warm: nothing to launch, and the lookup already *is*
        // the merge — don't re-read the store.
        let merged: Vec<EvaluatedPoint> = slots.into_iter().map(|s| s.expect("all hits")).collect();
        (Vec::new(), merged, 0)
    } else {
        let mut slots = slots;
        let missing: Vec<DesignPoint> =
            points.iter().zip(&slots).filter(|(_, hit)| hit.is_none()).map(|(p, _)| *p).collect();
        let workers = launch()?;
        // Merge reuses the pre-launch hits: only the formerly-missing
        // points are re-read (the workers just appended them), and any
        // straggler a dead worker failed to deliver is evaluated here —
        // with every core, since the workers are gone by merge time.
        let recovered =
            fill_missing_slots(&cache, &missing, &mut slots, pool::available_threads())?;
        let merged = slots.into_iter().map(|s| s.expect("every slot filled")).collect();
        (workers, merged, recovered)
    };
    let stats = SweepStats {
        total_points: merged.len(),
        evaluated: merged.len() - pre_hits,
        cache_hits: pre_hits,
        cache_hit: pre_hits == merged.len(),
        threads: total_threads,
        wall: started.elapsed(),
    };
    Ok(DistribOutcome {
        outcome: SweepOutcome {
            spec: spec.clone(),
            points: merged,
            stats,
            cache_path: Some(cache.store_dir()),
        },
        workers,
        recovered,
    })
}

/// Assemble a spec's full result set out of the shared store,
/// evaluating and appending any stragglers locally — the coordinator's
/// merge step, and the whole crash-recovery path. Returns the points in
/// spec order plus how many had to be recovered.
pub fn merge_and_recover(
    spec: &SweepSpec,
    cache: &EvalCache,
    threads: usize,
) -> Result<(Vec<EvaluatedPoint>, usize), DistribError> {
    let points = spec.points();
    let mut slots: Vec<Option<EvaluatedPoint>> = vec![None; points.len()];
    let recovered = fill_missing_slots(cache, &points, &mut slots, threads)?;
    let merged = slots.into_iter().map(|s| s.expect("every slot filled")).collect();
    Ok((merged, recovered))
}

/// Fill every `None` slot from its matching point in `missing` (the
/// i-th missing point corresponds to the i-th `None` slot, in order):
/// look the point up in the store once more — workers may have
/// appended it since the caller's partition — and evaluate it locally
/// if it is still absent, appending the fresh rows back. Only the
/// shards the missing keys land in are read. Returns how many points
/// had to be evaluated locally.
fn fill_missing_slots(
    cache: &EvalCache,
    missing: &[DesignPoint],
    slots: &mut [Option<EvaluatedPoint>],
    threads: usize,
) -> Result<usize, DistribError> {
    let looked_up = cache.lookup(missing);
    let stragglers: Vec<DesignPoint> =
        missing.iter().zip(&looked_up).filter(|(_, hit)| hit.is_none()).map(|(p, _)| *p).collect();
    let recovered = stragglers.len();
    let fresh = evaluate_points(&stragglers, threads);
    cache.append(&fresh)?;
    let mut looked_up = looked_up.into_iter();
    let mut fresh = fresh.into_iter();
    for slot in slots.iter_mut().filter(|s| s.is_none()) {
        let hit = looked_up.next().expect("one lookup per missing slot");
        *slot = Some(hit.unwrap_or_else(|| fresh.next().expect("one evaluation per straggler")));
    }
    Ok(recovered)
}

/// Drive the full worker protocol on in-process threads: `workers`
/// concurrent [`run_worker_slice`] calls against one store, then the
/// coordinator merge. Exercises every concurrency property of the
/// store (locked appends, header race, torn-tail repair) without
/// process-spawn overhead — the distributed form `bench_dse` tracks.
pub fn run_sharded_in_process(
    spec: &SweepSpec,
    workers: usize,
    threads_per_worker: usize,
    cache_dir: &Path,
) -> Result<DistribOutcome, DistribError> {
    let workers = workers.max(1);
    drive(spec, cache_dir, workers * threads_per_worker, || {
        let summaries: Vec<Result<WorkerSummary, DistribError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|shard| {
                    scope.spawn(move || {
                        run_worker_slice(spec, shard, workers, cache_dir, threads_per_worker)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread never panics")).collect()
        });
        // Mirror the process backend: a failed worker is reported and
        // its slice recovered, not fatal.
        Ok(summaries
            .into_iter()
            .enumerate()
            .map(|(shard, r)| match r {
                Ok(s) => {
                    WorkerReport { shard, ok: true, stdout: s.to_string(), stderr: String::new() }
                }
                Err(e) => {
                    WorkerReport { shard, ok: false, stdout: String::new(), stderr: e.to_string() }
                }
            })
            .collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepEngine;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ng-dse-distrib-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shards_partition_the_spec() {
        let points = SweepSpec::quick().points();
        for of in [1, 2, 3, 7] {
            let slices: Vec<Vec<DesignPoint>> =
                (0..of).map(|s| shard_points(&points, s, of)).collect();
            let mut union: Vec<DesignPoint> = slices.concat();
            union.sort_by_key(|p| p.index);
            assert_eq!(union, points, "of={of}: disjoint slices covering the spec");
            // Round-robin balance: slice sizes differ by at most one.
            let sizes: Vec<usize> = slices.iter().map(Vec::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "of={of}: {sizes:?}");
        }
    }

    #[test]
    fn shard_arg_parsing() {
        assert_eq!(parse_shard_arg("0/3"), Some((0, 3)));
        assert_eq!(parse_shard_arg("2/3"), Some((2, 3)));
        assert_eq!(parse_shard_arg(" 1 / 4 "), Some((1, 4)));
        assert_eq!(parse_shard_arg("3/3"), None, "shard must be < of");
        assert_eq!(parse_shard_arg("0/0"), None);
        assert_eq!(parse_shard_arg("1"), None);
        assert_eq!(parse_shard_arg("a/b"), None);
    }

    #[test]
    fn worker_slices_compose_into_the_exact_sweep() {
        let dir = tmpdir("compose");
        let spec = SweepSpec::quick();
        for shard in 0..3 {
            let summary = run_worker_slice(&spec, shard, 3, &dir, 2).unwrap();
            assert_eq!(summary.cache_hits, 0, "cold store");
            assert_eq!(summary.evaluated, summary.points);
        }
        let cache = EvalCache::new(&dir);
        let (merged, recovered) = merge_and_recover(&spec, &cache, 1).unwrap();
        assert_eq!(recovered, 0, "all three slices delivered");
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(merged, reference.points, "bit-identical to single-process");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_recovers_a_dead_workers_slice() {
        // Workers 0 and 2 of 3 delivered; worker 1 "was killed". The
        // coordinator's merge must evaluate exactly that slice itself
        // and still produce the full, identical result set.
        let dir = tmpdir("recover");
        let spec = SweepSpec::quick();
        run_worker_slice(&spec, 0, 3, &dir, 1).unwrap();
        run_worker_slice(&spec, 2, 3, &dir, 1).unwrap();
        let cache = EvalCache::new(&dir);
        let dead_slice = shard_points(&spec.points(), 1, 3).len();
        let (merged, recovered) = merge_and_recover(&spec, &cache, 2).unwrap();
        assert_eq!(recovered, dead_slice, "exactly the dead worker's points");
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(merged, reference.points);
        // The recovery appended its work: a second merge is all hits.
        let (again, recovered) = merge_and_recover(&spec, &cache, 1).unwrap();
        assert_eq!(recovered, 0);
        assert_eq!(again, merged);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_process_sharded_run_matches_single_process() {
        let dir = tmpdir("in-process");
        let spec = SweepSpec::quick();
        let distributed = run_sharded_in_process(&spec, 3, 1, &dir).unwrap();
        assert_eq!(distributed.recovered, 0);
        assert!(distributed.workers.iter().all(|w| w.ok));
        assert_eq!(distributed.outcome.stats.evaluated, spec.point_count());
        assert_eq!(distributed.outcome.stats.cache_hits, 0);
        let reference = SweepEngine::new().without_cache().run(&spec).unwrap();
        assert_eq!(distributed.outcome.points, reference.points);
        // Resume: a second distributed run is a pure store hit.
        let warm = run_sharded_in_process(&spec, 3, 1, &dir).unwrap();
        assert!(warm.outcome.stats.cache_hit);
        assert_eq!(warm.outcome.stats.evaluated, 0);
        assert_eq!(warm.outcome.points, reference.points);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_worker_counts_are_rejected_or_clamped() {
        let dir = tmpdir("degenerate");
        let spec = SweepSpec::quick();
        assert!(matches!(
            run_worker_slice(&spec, 5, 3, &dir, 1),
            Err(DistribError::Shard { shard: 5, of: 3 })
        ));
        // Coordinator clamps 0 workers to 1 rather than dividing by it.
        assert_eq!(Coordinator::new(0).workers(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
