//! The GPU reference point for Fig. 15 normalisation.

use serde::{Deserialize, Serialize};

/// Die-level reference data of the host GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuReference {
    /// Die area in mm^2.
    pub die_area_mm2: f64,
    /// Board power in watts.
    pub tdp_watts: f64,
}

/// Nvidia RTX 3090 (GA102): 628.4 mm^2, 350 W — the paper's baseline.
pub const RTX3090: GpuReference = GpuReference { die_area_mm2: 628.4, tdp_watts: 350.0 };

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_datasheet() {
        assert_eq!(RTX3090.die_area_mm2, 628.4);
        assert_eq!(RTX3090.tdp_watts, 350.0);
    }
}
