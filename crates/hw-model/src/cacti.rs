//! CACTI-lite: analytic SRAM area, access energy and leakage at 45 nm.
//!
//! The coefficients are fitted to published CACTI 6.5 outputs for 45 nm
//! ITRS-HP single-bank SRAMs in the 32 KiB – 4 MiB range: area grows
//! slightly super-linearly with capacity (peripheral overhead), access
//! energy grows roughly with the square root of capacity (bitline/wordline
//! length), and leakage is proportional to capacity.

use serde::{Deserialize, Serialize};

/// An SRAM macro description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Read/write port word width in bits.
    pub word_bits: u32,
    /// Number of banks (parallel access ports).
    pub banks: u32,
}

/// CACTI-style estimate for one SRAM macro at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramEstimate {
    /// Area in mm^2.
    pub area_mm2: f64,
    /// Energy per access in picojoules.
    pub access_energy_pj: f64,
    /// Leakage power in watts.
    pub leakage_watts: f64,
    /// Random access time in nanoseconds.
    pub access_time_ns: f64,
}

/// Effective area per bit at 45 nm including peripheral circuitry, for a
/// 1 MiB macro (mm^2 per megabyte).
const AREA_MM2_PER_MB: f64 = 2.8;
/// Capacity exponent for area (peripheral amortisation).
const AREA_EXPONENT: f64 = 0.96;
/// Access energy of a 32-bit read from a 1 MiB macro (pJ).
const ENERGY_PJ_1MB_32B: f64 = 40.0;
/// Capacity exponent for access energy.
const ENERGY_EXPONENT: f64 = 0.45;
/// Leakage per megabyte at 45 nm (watts).
const LEAKAGE_W_PER_MB: f64 = 0.28;
/// Access time of a 1 MiB macro at 45 nm (ns).
const ACCESS_NS_1MB: f64 = 1.8;

/// Estimate an SRAM macro. Banking divides the effective capacity per
/// bank for energy/latency purposes but adds a 3 % area overhead per
/// extra bank.
pub fn estimate(sram: SramMacro) -> SramEstimate {
    let mb = sram.capacity_bytes as f64 / (1024.0 * 1024.0);
    let banks = sram.banks.max(1) as f64;
    let bank_mb = mb / banks;
    let area = AREA_MM2_PER_MB * mb.powf(AREA_EXPONENT) * (1.0 + 0.03 * (banks - 1.0));
    let energy = ENERGY_PJ_1MB_32B
        * bank_mb.max(1.0 / 1024.0).powf(ENERGY_EXPONENT)
        * (sram.word_bits as f64 / 32.0);
    let leakage = LEAKAGE_W_PER_MB * mb;
    let access = ACCESS_NS_1MB * bank_mb.max(1.0 / 1024.0).powf(0.4);
    SramEstimate {
        area_mm2: area,
        access_energy_pj: energy,
        leakage_watts: leakage,
        access_time_ns: access,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macro_of(kb: u64) -> SramMacro {
        SramMacro { capacity_bytes: kb * 1024, word_bits: 32, banks: 1 }
    }

    #[test]
    fn one_mb_is_a_few_mm2_at_45nm() {
        let e = estimate(macro_of(1024));
        assert!(e.area_mm2 > 2.0 && e.area_mm2 < 5.0, "{}", e.area_mm2);
    }

    #[test]
    fn area_scales_superlinearly_downward() {
        // Half the capacity should cost a bit more than half the area.
        let full = estimate(macro_of(1024)).area_mm2;
        let half = estimate(macro_of(512)).area_mm2;
        assert!(half > full * 0.5 * 0.98);
        assert!(half < full * 0.62);
    }

    #[test]
    fn energy_grows_with_capacity() {
        assert!(
            estimate(macro_of(2048)).access_energy_pj > estimate(macro_of(256)).access_energy_pj
        );
    }

    #[test]
    fn wider_words_cost_more_energy() {
        let narrow = estimate(SramMacro { capacity_bytes: 1 << 20, word_bits: 32, banks: 1 });
        let wide = estimate(SramMacro { capacity_bytes: 1 << 20, word_bits: 128, banks: 1 });
        assert!((wide.access_energy_pj / narrow.access_energy_pj - 4.0).abs() < 1e-6);
    }

    #[test]
    fn banking_reduces_latency_but_adds_area() {
        let flat = estimate(SramMacro { capacity_bytes: 1 << 20, word_bits: 32, banks: 1 });
        let banked = estimate(SramMacro { capacity_bytes: 1 << 20, word_bits: 32, banks: 8 });
        assert!(banked.access_time_ns < flat.access_time_ns);
        assert!(banked.area_mm2 > flat.area_mm2);
    }

    #[test]
    fn leakage_proportional_to_capacity() {
        let a = estimate(macro_of(1024)).leakage_watts;
        let b = estimate(macro_of(2048)).leakage_watts;
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sub_2ns_access_for_small_arrays() {
        // The NFP grid SRAM must serve a lookup per cycle at ~1 GHz; small
        // banks make that possible.
        let banked = estimate(SramMacro { capacity_bytes: 1 << 20, word_bits: 32, banks: 8 });
        assert!(banked.access_time_ns < 1.5, "{}", banked.access_time_ns);
    }
}
