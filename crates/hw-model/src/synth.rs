//! Gate-level area/power estimation at 45 nm — the Design Compiler
//! substitute.
//!
//! Each NFP module is assigned a NAND2-equivalent gate count based on
//! standard datapath composition (array multipliers, carry-lookahead
//! adders, flop-based FIFOs). Areas use the Nangate 45 nm open cell
//! library's NAND2X1 footprint; dynamic energy uses a per-gate switching
//! energy at nominal 1.1 V with a typical activity factor.

use serde::{Deserialize, Serialize};

/// NAND2X1 cell area in the Nangate 45 nm open cell library (um^2).
pub const NAND2_AREA_UM2: f64 = 0.798;

/// Average switching energy per gate-toggle at 45 nm, 1.1 V (femtojoule).
pub const GATE_SWITCH_FJ: f64 = 3.0;

/// Typical datapath activity factor.
pub const ACTIVITY_FACTOR: f64 = 0.15;

/// Leakage power per kilo-gate at 45 nm (microwatt).
pub const LEAKAGE_UW_PER_KGATE: f64 = 9.0;

/// Datapath building blocks of the neural fields processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Module {
    /// fp16 multiply–accumulate unit (the MLP engine's PE).
    MacFp16,
    /// fp32 accumulator / adder.
    AdderFp32,
    /// 32-bit integer multiplier (hash primes).
    MulInt32,
    /// The `grid_index` hash unit: d integer multiplies + XOR tree + mask.
    HashUnit,
    /// The `grid_scale` stage: per-level scale computation.
    GridScale,
    /// The `pos_fract` stage: scale-multiply, floor, subtract per dim.
    PosFract,
    /// The `interpol_weights` stage: 2^d weight products + F MACs.
    InterpolWeights,
    /// Input FIFO (per entry of 96 bits, flop-based).
    FifoEntry96b,
    /// Control FSM + configuration registers of one engine.
    EngineControl,
}

impl Module {
    /// NAND2-equivalent gate count.
    pub fn gate_count(self) -> u64 {
        match self {
            // 11x11 mantissa array multiplier + alignment + 22b add.
            Module::MacFp16 => 1_100,
            Module::AdderFp32 => 320,
            Module::MulInt32 => 3_200,
            // 3 integer multiplies + xor tree + mask register.
            Module::HashUnit => 3 * 3_200 + 160 + 80,
            Module::GridScale => 1_400,
            // 3 x (multiply + floor + subtract).
            Module::PosFract => 3 * (3_200 + 150 + 320),
            // 8 weight products (3 muls each deep) + 2 feature MACs wide.
            Module::InterpolWeights => 8 * 2_200 + 16 * 1_100,
            Module::FifoEntry96b => 96 * 8,
            Module::EngineControl => 6_000,
        }
    }

    /// Area in mm^2 at 45 nm.
    pub fn area_mm2(self) -> f64 {
        self.gate_count() as f64 * NAND2_AREA_UM2 * 1e-6
    }

    /// Dynamic power in watts at `clock_ghz`, assuming the module is busy
    /// every cycle with the typical activity factor.
    pub fn dynamic_watts(self, clock_ghz: f64) -> f64 {
        self.gate_count() as f64 * GATE_SWITCH_FJ * 1e-15 * ACTIVITY_FACTOR * clock_ghz * 1e9
    }

    /// Leakage power in watts at 45 nm.
    pub fn leakage_watts(self) -> f64 {
        self.gate_count() as f64 / 1_000.0 * LEAKAGE_UW_PER_KGATE * 1e-6
    }
}

/// Aggregate area/power of a set of module instances.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SynthEstimate {
    /// Total area in mm^2 (45 nm).
    pub area_mm2: f64,
    /// Total dynamic power in watts (45 nm, at the given clock).
    pub dynamic_watts: f64,
    /// Total leakage power in watts (45 nm).
    pub leakage_watts: f64,
}

impl SynthEstimate {
    /// Accumulate `count` instances of `module` at `clock_ghz`.
    pub fn add(&mut self, module: Module, count: u64, clock_ghz: f64) {
        self.area_mm2 += module.area_mm2() * count as f64;
        self.dynamic_watts += module.dynamic_watts(clock_ghz) * count as f64;
        self.leakage_watts += module.leakage_watts() * count as f64;
    }

    /// Total power (dynamic + leakage) in watts.
    pub fn total_watts(&self) -> f64 {
        self.dynamic_watts + self.leakage_watts
    }

    /// Apply an integration overhead factor (clock tree, NoC, glue).
    pub fn with_overhead(self, factor: f64) -> SynthEstimate {
        SynthEstimate {
            area_mm2: self.area_mm2 * factor,
            dynamic_watts: self.dynamic_watts * factor,
            leakage_watts: self.leakage_watts * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_area_is_sub_milli_mm2() {
        // ~1k gates x 0.8 um^2 ~ 0.0009 mm^2.
        let a = Module::MacFp16.area_mm2();
        assert!(a > 5e-4 && a < 2e-3, "{a}");
    }

    #[test]
    fn mac_array_64x64_is_a_few_mm2() {
        let mut est = SynthEstimate::default();
        est.add(Module::MacFp16, 64 * 64, 1.0);
        assert!(est.area_mm2 > 2.0 && est.area_mm2 < 6.0, "{}", est.area_mm2);
    }

    #[test]
    fn hash_unit_dominated_by_multipliers() {
        assert!(Module::HashUnit.gate_count() > 3 * Module::MulInt32.gate_count() * 9 / 10);
    }

    #[test]
    fn dynamic_power_scales_with_clock() {
        let p1 = Module::MacFp16.dynamic_watts(1.0);
        let p2 = Module::MacFp16.dynamic_watts(2.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_accumulates() {
        let mut est = SynthEstimate::default();
        est.add(Module::AdderFp32, 10, 1.0);
        let single = Module::AdderFp32.area_mm2();
        assert!((est.area_mm2 - 10.0 * single).abs() < 1e-12);
        assert!(est.total_watts() > 0.0);
    }

    #[test]
    fn overhead_scales_everything() {
        let mut est = SynthEstimate::default();
        est.add(Module::EngineControl, 1, 1.0);
        let with = est.with_overhead(1.2);
        assert!((with.area_mm2 / est.area_mm2 - 1.2).abs() < 1e-9);
        assert!((with.total_watts() / est.total_watts() - 1.2).abs() < 1e-9);
    }
}
