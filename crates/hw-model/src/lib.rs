//! # ng-hw — hardware area/power substrate
//!
//! The paper estimates NGPC area and power by synthesising NFP RTL with
//! Synopsys Design Compiler against the Nangate 45 nm open cell library,
//! modelling SRAMs with CACTI, and scaling the result to 7 nm with the
//! Stillmaker–Baas equations. This crate substitutes each tool:
//!
//! * [`synth`] — gate-count-based module area/power at 45 nm (the
//!   Design-Compiler substitute),
//! * [`cacti`] — an analytic SRAM area/energy/leakage model fitted to
//!   published CACTI 6.5 data points (the CACTI substitute),
//! * [`scaling`] — 45 nm → 7 nm technology scaling factors in the range
//!   published by Stillmaker & Baas (2017),
//! * [`gpu_ref`] — the RTX 3090 die area/power used for normalisation,
//! * [`report`] — the Fig. 15 rollup: NGPC area/power relative to the
//!   GPU for scaling factors 8/16/32/64.

pub mod cacti;
pub mod gpu_ref;
pub mod report;
pub mod scaling;
pub mod synth;

pub use report::{
    ngpc_area_power, ngpc_area_power_vs, AreaPowerCache, AreaPowerReport, NfpFloorplan,
};
