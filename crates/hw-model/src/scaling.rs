//! Technology scaling from 45 nm to 7 nm, after Stillmaker & Baas,
//! "Scaling equations for the accurate prediction of CMOS device
//! performance from 180 nm to 7 nm", Integration 58 (2017) — the same
//! source the paper cites for its iso-technode comparison.

use serde::{Deserialize, Serialize};

/// Cumulative scaling factors between two nodes (multiply a 45 nm
/// quantity by the factor to get its value at the target node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingFactors {
    /// Area multiplier (< 1 when shrinking).
    pub area: f64,
    /// Power multiplier at constant frequency and activity.
    pub power: f64,
    /// Gate-delay multiplier (< 1 means faster).
    pub delay: f64,
}

/// Stillmaker–Baas-derived cumulative factors from 45 nm to 7 nm.
///
/// Their fitted data gives ~17-21x area reduction and ~7-8x
/// energy-per-operation reduction over this span (dynamic power at fixed
/// frequency tracks energy); we use mid-range values.
pub const FACTORS_45_TO_7: ScalingFactors =
    ScalingFactors { area: 1.0 / 20.0, power: 0.138, delay: 0.42 };

/// Scale a 45 nm area (mm^2) to 7 nm.
pub fn area_45_to_7(area_mm2: f64) -> f64 {
    area_mm2 * FACTORS_45_TO_7.area
}

/// Scale 45 nm power (W, constant frequency) to 7 nm.
pub fn power_45_to_7(watts: f64) -> f64 {
    watts * FACTORS_45_TO_7.power
}

/// Scale a 45 nm delay (ns) to 7 nm.
pub fn delay_45_to_7(ns: f64) -> f64 {
    ns * FACTORS_45_TO_7.delay
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn area_shrinks_by_over_an_order_of_magnitude() {
        assert!(area_45_to_7(20.0) <= 1.0 + 1e-9);
        assert!(FACTORS_45_TO_7.area < 0.1 && FACTORS_45_TO_7.area > 0.02);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn power_reduction_in_published_range() {
        // S&B: roughly 6-9x energy/op reduction 45 -> 7 nm.
        let reduction = 1.0 / FACTORS_45_TO_7.power;
        assert!((6.0..=9.0).contains(&reduction), "{reduction}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn delay_improves_but_sublinearly() {
        assert!(FACTORS_45_TO_7.delay < 1.0);
        assert!(FACTORS_45_TO_7.delay > 0.2);
    }

    #[test]
    fn scaling_is_linear() {
        assert!((area_45_to_7(2.0) - 2.0 * area_45_to_7(1.0)).abs() < 1e-12);
        assert!((power_45_to_7(2.0) - 2.0 * power_45_to_7(1.0)).abs() < 1e-12);
    }
}
