//! The Fig. 15 rollup: NGPC area and power relative to the RTX 3090.

use serde::{Deserialize, Serialize};

use crate::cacti::{estimate as sram_estimate, SramMacro};
use crate::gpu_ref::{GpuReference, RTX3090};
use crate::scaling::{area_45_to_7, power_45_to_7};
use crate::synth::{Module, SynthEstimate};

/// Physical composition of one neural fields processor (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NfpFloorplan {
    /// Input-encoding engines per NFP (16, matching the maximum level
    /// count).
    pub encoding_engines: u32,
    /// Query lanes per encoding engine: parallel corner-fetch pipelines
    /// sharing the engine's grid SRAM (1 in the paper).
    pub lanes_per_engine: u32,
    /// Grid SRAM per encoding engine in bytes (1 MB in the paper).
    pub grid_sram_bytes: u64,
    /// Banks per grid SRAM (supports one lookup per corner per cycle).
    pub grid_sram_banks: u32,
    /// MAC array rows (64).
    pub mac_rows: u32,
    /// MAC array columns (64).
    pub mac_cols: u32,
    /// MLP weight SRAM in bytes.
    pub weight_sram_bytes: u64,
    /// MLP intermediate-activation SRAM in bytes.
    pub activation_sram_bytes: u64,
    /// Input FIFO depth (entries of 96 bits: one 3D position).
    pub input_fifo_depth: u32,
    /// Operating clock in GHz.
    pub clock_ghz: f64,
}

impl Default for NfpFloorplan {
    /// The paper's NFP: 16 engines x 1 MB grid SRAM, 64x64 MACs, 1 GHz.
    fn default() -> Self {
        NfpFloorplan {
            encoding_engines: 16,
            lanes_per_engine: 1,
            grid_sram_bytes: 1 << 20,
            grid_sram_banks: 8,
            mac_rows: 64,
            mac_cols: 64,
            weight_sram_bytes: 128 * 1024,
            activation_sram_bytes: 32 * 1024,
            input_fifo_depth: 64,
            clock_ghz: 1.0,
        }
    }
}

/// Area/power of one component group, at 45 nm and scaled to 7 nm.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentBudget {
    /// Area at 45 nm (mm^2).
    pub area_mm2_45: f64,
    /// Power at 45 nm (W).
    pub watts_45: f64,
}

/// Full area/power report for an NGPC configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerReport {
    /// NFP units in the cluster.
    pub nfp_units: u32,
    /// Grid SRAM budget (per NFP, 45 nm).
    pub grid_srams: ComponentBudget,
    /// MLP engine budget (per NFP, 45 nm).
    pub mlp_engine: ComponentBudget,
    /// Encoding-engine datapath budget (per NFP, 45 nm).
    pub encoding_logic: ComponentBudget,
    /// One NFP total at 45 nm (mm^2, W), including integration overhead.
    pub nfp_area_mm2_45: f64,
    /// One NFP total power at 45 nm (W).
    pub nfp_watts_45: f64,
    /// One NFP at 7 nm.
    pub nfp_area_mm2_7: f64,
    /// One NFP power at 7 nm.
    pub nfp_watts_7: f64,
    /// Whole-cluster area at 7 nm.
    pub cluster_area_mm2_7: f64,
    /// Whole-cluster power at 7 nm.
    pub cluster_watts_7: f64,
    /// Cluster area as a percentage of the GPU die.
    pub area_pct_of_gpu: f64,
    /// Cluster power as a percentage of GPU TDP.
    pub power_pct_of_gpu: f64,
}

/// Clock-tree / NoC / integration overhead applied to synthesised logic
/// and memories.
const INTEGRATION_OVERHEAD: f64 = 1.15;

/// Fraction of cycles the MAC array toggles (pipeline bubbles between
/// layers and batches).
const MAC_UTILISATION: f64 = 0.9;

/// Grid-SRAM read accesses per engine per cycle (corner fetch rate).
const SRAM_READS_PER_CYCLE: f64 = 2.0;

/// Estimate the Fig. 15 area/power of an NGPC with `nfp_units` NFPs
/// against a GPU reference.
pub fn ngpc_area_power_vs(
    floorplan: &NfpFloorplan,
    nfp_units: u32,
    gpu: GpuReference,
) -> AreaPowerReport {
    let clk = floorplan.clock_ghz;

    // --- Grid SRAMs (CACTI-lite) ---
    let grid = sram_estimate(SramMacro {
        capacity_bytes: floorplan.grid_sram_bytes,
        word_bits: 32,
        banks: floorplan.grid_sram_banks,
    });
    let n_eng = floorplan.encoding_engines as f64;
    // Every extra query lane adds a concurrent corner-fetch stream into
    // the (shared) grid SRAM.
    let lanes = floorplan.lanes_per_engine.max(1) as f64;
    let grid_dynamic =
        n_eng * lanes * SRAM_READS_PER_CYCLE * clk * 1e9 * grid.access_energy_pj * 1e-12;
    let grid_srams = ComponentBudget {
        area_mm2_45: n_eng * grid.area_mm2,
        watts_45: grid_dynamic + n_eng * grid.leakage_watts,
    };

    // --- MLP engine: MAC array + weight/activation SRAMs ---
    let mut mlp_synth = SynthEstimate::default();
    let macs = (floorplan.mac_rows * floorplan.mac_cols) as u64;
    mlp_synth.add(Module::MacFp16, macs, clk);
    mlp_synth.add(Module::AdderFp32, floorplan.mac_rows as u64, clk);
    let wsram = sram_estimate(SramMacro {
        capacity_bytes: floorplan.weight_sram_bytes,
        word_bits: 128,
        banks: 4,
    });
    let asram = sram_estimate(SramMacro {
        capacity_bytes: floorplan.activation_sram_bytes,
        word_bits: 128,
        banks: 2,
    });
    let sram_access_w = (wsram.access_energy_pj + asram.access_energy_pj) * 1e-12 * clk * 1e9;
    let mlp_engine = ComponentBudget {
        area_mm2_45: mlp_synth.area_mm2 + wsram.area_mm2 + asram.area_mm2,
        watts_45: mlp_synth.dynamic_watts * MAC_UTILISATION
            + mlp_synth.leakage_watts
            + sram_access_w
            + wsram.leakage_watts
            + asram.leakage_watts,
    };

    // --- Encoding-engine datapaths ---
    let mut enc_synth = SynthEstimate::default();
    let n = floorplan.encoding_engines as u64;
    // The corner-fetch pipeline is replicated per query lane; control
    // and the input FIFO are shared by an engine's lanes.
    let n_lanes = n * floorplan.lanes_per_engine.max(1) as u64;
    enc_synth.add(Module::HashUnit, n_lanes, clk);
    enc_synth.add(Module::GridScale, n_lanes, clk);
    enc_synth.add(Module::PosFract, n_lanes, clk);
    enc_synth.add(Module::InterpolWeights, n_lanes, clk);
    enc_synth.add(Module::EngineControl, n, clk);
    enc_synth.add(Module::FifoEntry96b, n * floorplan.input_fifo_depth as u64, clk);
    let encoding_logic =
        ComponentBudget { area_mm2_45: enc_synth.area_mm2, watts_45: enc_synth.total_watts() };

    let nfp_area_mm2_45 =
        (grid_srams.area_mm2_45 + mlp_engine.area_mm2_45 + encoding_logic.area_mm2_45)
            * INTEGRATION_OVERHEAD;
    let nfp_watts_45 = (grid_srams.watts_45 + mlp_engine.watts_45 + encoding_logic.watts_45)
        * INTEGRATION_OVERHEAD;

    let nfp_area_mm2_7 = area_45_to_7(nfp_area_mm2_45);
    let nfp_watts_7 = power_45_to_7(nfp_watts_45);
    let cluster_area_mm2_7 = nfp_area_mm2_7 * nfp_units as f64;
    let cluster_watts_7 = nfp_watts_7 * nfp_units as f64;

    AreaPowerReport {
        nfp_units,
        grid_srams,
        mlp_engine,
        encoding_logic,
        nfp_area_mm2_45,
        nfp_watts_45,
        nfp_area_mm2_7,
        nfp_watts_7,
        cluster_area_mm2_7,
        cluster_watts_7,
        area_pct_of_gpu: 100.0 * cluster_area_mm2_7 / gpu.die_area_mm2,
        power_pct_of_gpu: 100.0 * cluster_watts_7 / gpu.tdp_watts,
    }
}

/// [`ngpc_area_power_vs`] against the RTX 3090 with the default NFP.
pub fn ngpc_area_power(nfp_units: u32) -> AreaPowerReport {
    ngpc_area_power_vs(&NfpFloorplan::default(), nfp_units, RTX3090)
}

/// Bit-exact hash key of a floorplan (clock keyed by its bit pattern).
fn floorplan_key(f: &NfpFloorplan) -> [u64; 8] {
    [
        ((f.lanes_per_engine as u64) << 32) | f.encoding_engines as u64,
        f.grid_sram_bytes,
        f.grid_sram_banks as u64,
        ((f.mac_rows as u64) << 32) | f.mac_cols as u64,
        f.weight_sram_bytes,
        f.activation_sram_bytes,
        f.input_fifo_depth as u64,
        f.clock_ghz.to_bits(),
    ]
}

/// Memoized area/power lookups for design-space sweeps.
///
/// A sweep evaluates many `(floorplan, nfp_units)` points but only a
/// handful of distinct floorplans; since cluster area and power are
/// exactly linear in the NFP count (see
/// `area_and_power_scale_linearly_in_nfp_count`), one synthesis +
/// CACTI pass per floorplan serves every unit count. Repeat lookups are
/// a hash probe plus four multiplies.
#[derive(Debug, Default)]
pub struct AreaPowerCache {
    per_nfp: std::collections::HashMap<[u64; 8], AreaPowerReport>,
    hits: u64,
    misses: u64,
}

impl AreaPowerCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Area/power of `nfp_units` NFPs of this floorplan vs `gpu`,
    /// synthesising the floorplan at most once.
    pub fn lookup(
        &mut self,
        floorplan: &NfpFloorplan,
        nfp_units: u32,
        gpu: GpuReference,
    ) -> AreaPowerReport {
        let key = floorplan_key(floorplan);
        let base = match self.per_nfp.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                v.insert(ngpc_area_power_vs(floorplan, 1, gpu))
            }
        };
        // Recompute the cluster rollup with the exact expressions of
        // `ngpc_area_power_vs`, so cached lookups are bit-identical to
        // direct calls.
        let k = nfp_units as f64;
        let mut r = base.clone();
        r.nfp_units = nfp_units;
        r.cluster_area_mm2_7 = r.nfp_area_mm2_7 * k;
        r.cluster_watts_7 = r.nfp_watts_7 * k;
        r.area_pct_of_gpu = 100.0 * r.cluster_area_mm2_7 / gpu.die_area_mm2;
        r.power_pct_of_gpu = 100.0 * r.cluster_watts_7 / gpu.tdp_watts;
        r
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_area_percentages_track_paper() {
        // Paper: NGPC-8/16/32/64 add ~4.52 / 9.04 / 18.01 / 36.18 % area.
        let targets = [(8u32, 4.52f64), (16, 9.04), (32, 18.01), (64, 36.18)];
        for (n, pct) in targets {
            let r = ngpc_area_power(n);
            assert!(
                (r.area_pct_of_gpu - pct).abs() < pct * 0.06,
                "NGPC-{n}: model {:.2}% vs paper {pct}%",
                r.area_pct_of_gpu
            );
        }
    }

    #[test]
    fn fig15_power_percentages_track_paper() {
        // Paper: ~2.75 / 5.51 / 11.03 / 22.06 % power.
        let targets = [(8u32, 2.75f64), (16, 5.51), (32, 11.03), (64, 22.06)];
        for (n, pct) in targets {
            let r = ngpc_area_power(n);
            assert!(
                (r.power_pct_of_gpu - pct).abs() < pct * 0.06,
                "NGPC-{n}: model {:.2}% vs paper {pct}%",
                r.power_pct_of_gpu
            );
        }
    }

    #[test]
    fn area_and_power_scale_linearly_in_nfp_count() {
        let a = ngpc_area_power(8);
        let b = ngpc_area_power(16);
        assert!((b.area_pct_of_gpu / a.area_pct_of_gpu - 2.0).abs() < 1e-9);
        assert!((b.power_pct_of_gpu / a.power_pct_of_gpu - 2.0).abs() < 1e-9);
    }

    #[test]
    fn grid_srams_dominate_nfp_area() {
        // 16 MB of SRAM dwarfs the datapaths — the architectural reason
        // the paper sizes the SRAM to exactly one level's table.
        let r = ngpc_area_power(8);
        assert!(r.grid_srams.area_mm2_45 > r.mlp_engine.area_mm2_45);
        assert!(r.grid_srams.area_mm2_45 > r.encoding_logic.area_mm2_45);
        assert!(r.grid_srams.area_mm2_45 / (r.nfp_area_mm2_45 / INTEGRATION_OVERHEAD) > 0.6);
    }

    #[test]
    fn seven_nm_nfp_is_a_few_mm2() {
        let r = ngpc_area_power(8);
        assert!(r.nfp_area_mm2_7 > 1.0 && r.nfp_area_mm2_7 < 8.0, "{}", r.nfp_area_mm2_7);
    }

    #[test]
    fn cache_is_bit_identical_to_direct_calls() {
        let mut cache = AreaPowerCache::new();
        let plans = [
            NfpFloorplan::default(),
            NfpFloorplan { grid_sram_bytes: 512 * 1024, ..NfpFloorplan::default() },
            NfpFloorplan { clock_ghz: 2.0, grid_sram_banks: 4, ..NfpFloorplan::default() },
        ];
        for plan in &plans {
            for n in [1u32, 8, 64, 512] {
                let cached = cache.lookup(plan, n, RTX3090);
                let direct = ngpc_area_power_vs(plan, n, RTX3090);
                assert_eq!(cached, direct, "plan {plan:?} n={n}");
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 3, "one synthesis per distinct floorplan");
        assert_eq!(hits, 9);
    }

    #[test]
    fn extra_lanes_cost_area_and_power_but_single_lane_is_free() {
        // lanes = 1 is the paper's NFP: the lane axis must not perturb
        // the published Fig. 15 numbers at its default...
        let r_default = ngpc_area_power(8);
        let r_one = ngpc_area_power_vs(
            &NfpFloorplan { lanes_per_engine: 1, ..NfpFloorplan::default() },
            8,
            RTX3090,
        );
        assert_eq!(r_default, r_one);
        // ... while every extra lane replicates the corner-fetch
        // datapath and adds SRAM read pressure.
        let r_four = ngpc_area_power_vs(
            &NfpFloorplan { lanes_per_engine: 4, ..NfpFloorplan::default() },
            8,
            RTX3090,
        );
        assert!(r_four.area_pct_of_gpu > r_one.area_pct_of_gpu);
        assert!(r_four.power_pct_of_gpu > r_one.power_pct_of_gpu);
        // Lanes replicate datapath only, not the dominant grid SRAMs:
        // the area premium is real but small.
        assert!(r_four.area_pct_of_gpu < r_one.area_pct_of_gpu * 1.25);
    }

    #[test]
    fn custom_floorplan_reduces_area() {
        let small = NfpFloorplan { grid_sram_bytes: 512 * 1024, ..NfpFloorplan::default() };
        let r_small = ngpc_area_power_vs(&small, 8, RTX3090);
        let r_full = ngpc_area_power(8);
        assert!(r_small.area_pct_of_gpu < r_full.area_pct_of_gpu);
    }
}
